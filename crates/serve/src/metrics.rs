//! Lock-free serving metrics with per-stage latency histograms.
//!
//! Counters a production retrieval tier exports: request/response counts,
//! cache hit rate, a power-of-two micro-batch-size histogram (how well the
//! batcher coalesces), snapshot swaps — plus, since the observability
//! layer, full [`cumf_obs::Histogram`] latency distributions for every
//! pipeline [`Stage`] a request passes through and for the end-to-end
//! request latency itself.  All writers are relaxed atomics — the worker
//! records on the hot path without locks — and [`ServeMetrics::report`]
//! takes a coherent-enough snapshot for dashboards/tests.
//!
//! ## Stage partition
//!
//! The batcher stamps each request's journey so that, per request,
//!
//! ```text
//! e2e = queue_wait + coalesce + score + merge + reply    (exactly)
//! ```
//!
//! because adjacent stages share their boundary timestamps.  The serving
//! observability test pins this: the sum of stage means equals the e2e
//! mean up to float rounding.
//!
//! ## Windowed reports
//!
//! `batch_latency_ns_max` used to be cumulative-only, so a dashboard
//! polling [`report`](ServeMetrics::report) could never see a spike clear.
//! [`ServeMetrics::window_report`] returns both the **cumulative** report
//! and the **window** since the previous `window_report` call, diffed
//! bucket-by-bucket via [`HistogramSnapshot::since`].

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
use cumf_linalg::PruneStats;
use cumf_obs::{Exporter, Histogram, HistogramSnapshot};
use std::time::Duration;

/// Number of histogram buckets: batch sizes `1, 2–3, 4–7, …, ≥128`.
pub const BATCH_SIZE_BUCKETS: usize = 8;

/// The pipeline stages every served request passes through, in order.
/// Adjacent stages share boundary timestamps, so per request the stage
/// durations sum exactly to the end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Enqueue into the batcher channel → popped by a worker.
    QueueWait = 0,
    /// Popped → the micro-batch is sealed (coalescing window).
    Coalesce = 1,
    /// Batch sealed → all top-k scoring done (cache lookups included).
    Score = 2,
    /// Scoring done → per-request results distributed to reply slots.
    Merge = 3,
    /// Results distributed → this request's reply handed to the channel.
    Reply = 4,
}

/// Number of pipeline stages.
pub const STAGES: usize = 5;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGES] = [
        Stage::QueueWait,
        Stage::Coalesce,
        Stage::Score,
        Stage::Merge,
        Stage::Reply,
    ];

    /// Stable snake_case name (used in exporter keys and trace stages).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Coalesce => "coalesce",
            Stage::Score => "score",
            Stage::Merge => "merge",
            Stage::Reply => "reply",
        }
    }
}

/// Shared, lock-free serving counters and latency histograms.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    responses: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    batch_items: AtomicU64,
    batch_size_hist: [AtomicU64; BATCH_SIZE_BUCKETS],
    /// Per-batch serve_batch wall time (exact sum/max live inside).
    batch_latency: Histogram,
    /// Per-request latency of each pipeline stage.
    stages: [Histogram; STAGES],
    /// Per-request end-to-end latency (enqueue → reply sent).
    request_e2e: Histogram,
    /// Publisher-observed snapshot/delta publish latency.
    publish_latency: Histogram,
    /// Rating-ingest instant → first snapshot whose results reflect it.
    freshness: Histogram,
    /// Per-batch exact-f32 rerank pass over quantized-scan candidates
    /// (recorded only when a rerank actually ran — all-f32 batches skip it).
    rerank: Histogram,
    /// Bytes streamed by the blocked scorer: encoded slab bytes (+ scale
    /// tables) for quantized segments, raw f32 bytes for exact ones, plus
    /// the exact rows the rerank re-reads.  The bytes/query numerator.
    bytes_scanned: AtomicU64,
    /// Candidates rescored against retained exact f32 rows by the rerank.
    rerank_candidates: AtomicU64,
    /// Requests currently sitting in the batcher channel.
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth` since startup.
    queue_depth_hwm: AtomicU64,
    snapshot_swaps: AtomicU64,
    delta_publishes: AtomicU64,
    item_compactions: AtomicU64,
    worker_panics: AtomicU64,
    worker_restarts: AtomicU64,
    blocks_scored: AtomicU64,
    blocks_pruned: AtomicU64,
    blocks_terminated: AtomicU64,
    approx_requests: AtomicU64,
    /// Baseline of the previous `window_report` call.
    window_baseline: Mutex<Option<MetricsReport>>,
}

impl ServeMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request entering the batcher.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records one reply sent.
    pub fn record_response(&self) {
        self.responses.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records a result served from the cache.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records a result that had to be scored.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records one coalesced micro-batch of `size` requests scored in
    /// `latency`.
    pub fn record_batch(&self, size: usize, latency: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
        self.batch_items.fetch_add(size as u64, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
        let bucket = (usize::BITS - 1)
            .saturating_sub(size.max(1).leading_zeros())
            .min(BATCH_SIZE_BUCKETS as u32 - 1) as usize;
        self.batch_size_hist[bucket].fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
        self.batch_latency.record(latency);
    }

    /// Records one request's time in `stage`, in nanoseconds.
    pub fn record_stage_ns(&self, stage: Stage, ns: u64) {
        self.stages[stage as usize].record_ns(ns);
    }

    /// Records one request's end-to-end latency (enqueue → reply sent).
    pub fn record_request_e2e_ns(&self, ns: u64) {
        self.request_e2e.record_ns(ns);
    }

    /// Records a request entering the batcher queue.  Call **before** the
    /// channel send: the worker's matching [`record_queue_exit`] can then
    /// only observe a depth its own message contributed to, so the gauge
    /// never underflows.
    ///
    /// [`record_queue_exit`]: ServeMetrics::record_queue_exit
    pub fn record_queue_enter(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: atomic +1 keeps the gauge balanced; no payload is published through it
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed); // relaxed-ok: monotonic max of this thread's own post-increment depth
    }

    /// Records a request leaving the batcher queue (popped by a worker, or
    /// un-counts a failed send).
    pub fn record_queue_exit(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed); // relaxed-ok: the matching -1; atomicity alone keeps the gauge balanced
    }

    /// Requests currently queued (an instantaneous gauge).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed) // relaxed-ok: instantaneous gauge read, report-only
    }

    /// Records a snapshot hot-swap.
    pub fn record_swap(&self) {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records a swap that went through the incremental delta path (also
    /// counted in `snapshot_swaps`).
    pub fn record_delta_publish(&self) {
        self.delta_publishes.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records how long a snapshot/delta publication took from the
    /// publisher's point of view (build + swap, not reader visibility lag).
    pub fn record_publish_latency(&self, latency: Duration) {
        self.publish_latency.record(latency);
    }

    /// Records one rating's **freshness**: the wall time from the instant
    /// the rating was ingested from the stream to the instant the first
    /// snapshot generation reflecting it was published.  Serving traffic
    /// admitted after that publish sees the update, so this is the online
    /// loop's end-to-end staleness bound.
    pub fn record_freshness_ns(&self, ns: u64) {
        self.freshness.record_ns(ns);
    }

    /// Records an item-segment compaction republish (also counted in
    /// `snapshot_swaps`).
    pub fn record_item_compaction(&self) {
        self.item_compactions.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records a scorer worker panicking while scoring — the panicked batch
    /// was dropped; whether capacity was lost depends on the restart
    /// budget (`worker_restarts` counts the recoveries).
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records a panicked worker resuming within its panic budget.
    pub fn record_worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records one batch's block-scan outcome: how many item blocks the
    /// scorer streamed, skipped exactly on the norm bound, and skipped by
    /// approximate early termination.  Keeping the three counts separate is
    /// what keeps [`MetricsReport::pruned_block_rate`] truthful when exact
    /// and approximate traffic mix.
    pub fn record_pruning(&self, stats: &PruneStats) {
        self.blocks_scored
            .fetch_add(stats.blocks_scored, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
        self.blocks_pruned
            .fetch_add(stats.blocks_pruned, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
        self.blocks_terminated
            .fetch_add(stats.blocks_terminated, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
        self.bytes_scanned
            .fetch_add(stats.bytes_scanned, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
        self.rerank_candidates
            .fetch_add(stats.rerank_candidates, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// Records one batch's exact-f32 rerank pass wall time, in nanoseconds.
    /// The rerank runs **inside** the [`Stage::Score`] span (so the
    /// five-stage telescoping identity is untouched); this histogram breaks
    /// its cost out the way `serve_freshness` breaks out staleness.
    pub fn record_rerank_ns(&self, ns: u64) {
        self.rerank.record_ns(ns);
    }

    /// Records `n` requests scored under an approximate policy (cache hits
    /// of approximate entries included — the caller counts what it serves).
    pub fn record_approx_requests(&self, n: u64) {
        self.approx_requests.fetch_add(n, Ordering::Relaxed); // relaxed-ok: independent monotonic stat; no cross-counter ordering promised
    }

    /// A point-in-time copy of all counters plus derived rates.  Cumulative
    /// since startup; see [`window_report`](ServeMetrics::window_report)
    /// for since-last-poll semantics.
    pub fn report(&self) -> MetricsReport {
        let requests = self.requests.load(Ordering::Relaxed); // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
        let hits = self.cache_hits.load(Ordering::Relaxed); // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
        let misses = self.cache_misses.load(Ordering::Relaxed); // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
        let batches = self.batches.load(Ordering::Relaxed); // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
        let batch_items = self.batch_items.load(Ordering::Relaxed); // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
        let batch_latency = self.batch_latency.snapshot();
        MetricsReport {
            requests,
            responses: self.responses.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            cache_hits: hits,
            cache_misses: misses,
            batches,
            batch_size_hist: std::array::from_fn(|i| {
                self.batch_size_hist[i].load(Ordering::Relaxed) // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            }),
            mean_batch_size: if batches > 0 {
                batch_items as f64 / batches as f64
            } else {
                0.0
            },
            batch_items,
            cache_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            mean_batch_latency: Duration::from_nanos(
                batch_latency.sum_ns().checked_div(batches).unwrap_or(0),
            ),
            max_batch_latency: Duration::from_nanos(batch_latency.max_ns()),
            batch_latency,
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
            request_e2e: self.request_e2e.snapshot(),
            publish_latency: self.publish_latency.snapshot(),
            freshness: self.freshness.snapshot(),
            rerank: self.rerank.snapshot(),
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            rerank_candidates: self.rerank_candidates.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            queue_depth_high_water: self.queue_depth_hwm.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            delta_publishes: self.delta_publishes.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            item_compactions: self.item_compactions.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            worker_panics: self.worker_panics.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            blocks_scored: self.blocks_scored.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            blocks_pruned: self.blocks_pruned.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            blocks_terminated: self.blocks_terminated.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
            approx_requests: self.approx_requests.load(Ordering::Relaxed), // relaxed-ok: racy-but-atomic sample; cross-counter skew is documented
        }
    }

    /// Takes a cumulative report **and** the window since the previous
    /// `window_report` call (the whole history on the first call).  This is
    /// what a periodic poller should use: cumulative maxima never reset, so
    /// only the window shows a latency spike clearing.
    pub fn window_report(&self) -> WindowedReport {
        let cumulative = self.report();
        let mut baseline = self
            .window_baseline
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let window = match baseline.as_ref() {
            Some(prev) => cumulative.since(prev),
            None => cumulative.clone(),
        };
        *baseline = Some(cumulative.clone());
        WindowedReport { window, cumulative }
    }
}

/// A paired since-last-poll and since-startup report from
/// [`ServeMetrics::window_report`].
#[derive(Debug, Clone)]
pub struct WindowedReport {
    /// Activity since the previous `window_report` call.
    pub window: MetricsReport,
    /// Activity since startup.
    pub cumulative: MetricsReport,
}

/// Read-side copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Requests accepted by the batcher.
    pub requests: u64,
    /// Replies delivered.
    pub responses: u64,
    /// Results served from the cache.
    pub cache_hits: u64,
    /// Results scored against a snapshot.
    pub cache_misses: u64,
    /// Coalesced micro-batches scored.
    pub batches: u64,
    /// Total requests across all micro-batches.
    pub batch_items: u64,
    /// Batch-size histogram (buckets `1, 2–3, 4–7, …, ≥128`).
    pub batch_size_hist: [u64; BATCH_SIZE_BUCKETS],
    /// Mean requests per micro-batch.
    pub mean_batch_size: f64,
    /// `hits / (hits + misses)`.
    pub cache_hit_rate: f64,
    /// Mean scoring latency per micro-batch (exact — from the histogram's
    /// exact sum).
    pub mean_batch_latency: Duration,
    /// Worst scoring latency of any micro-batch (exact in a cumulative
    /// report; bucket-bounded in a window).
    pub max_batch_latency: Duration,
    /// Full per-batch scoring latency distribution.
    pub batch_latency: HistogramSnapshot,
    /// Per-request latency distribution of each pipeline stage, indexed by
    /// `Stage as usize` (see [`MetricsReport::stage`]).
    pub stages: [HistogramSnapshot; STAGES],
    /// Per-request end-to-end latency distribution (enqueue → reply sent).
    pub request_e2e: HistogramSnapshot,
    /// Publisher-side snapshot/delta publish latency distribution.
    pub publish_latency: HistogramSnapshot,
    /// Rating freshness distribution: stream-ingest instant → first
    /// snapshot publish reflecting the rating (recorded by the online
    /// loop's [`crate::online::OnlineLoop`]).
    pub freshness: HistogramSnapshot,
    /// Per-batch exact-f32 rerank pass latency (inside the Score stage;
    /// recorded only for batches that actually reranked).
    pub rerank: HistogramSnapshot,
    /// Bytes streamed by the blocked scorer (encoded slab + scale tables
    /// for quantized segments, f32 rows for exact ones, plus the exact rows
    /// the rerank re-reads).
    pub bytes_scanned: u64,
    /// Candidates rescored against retained exact f32 rows by the rerank.
    pub rerank_candidates: u64,
    /// Most requests ever simultaneously queued in the batcher channel.
    pub queue_depth_high_water: u64,
    /// Snapshot generations published.
    pub snapshot_swaps: u64,
    /// Publications that went through the incremental delta path (a subset
    /// of `snapshot_swaps`).
    pub delta_publishes: u64,
    /// Item-segment compaction republishes (a subset of `snapshot_swaps`).
    pub item_compactions: u64,
    /// Scoring panics caught in workers (0 in a healthy service).
    pub worker_panics: u64,
    /// Panicked workers restarted within the panic budget (`worker_panics -
    /// worker_restarts` workers died for good).
    pub worker_restarts: u64,
    /// Item blocks streamed and scored by the blocked scorer.
    pub blocks_scored: u64,
    /// Item blocks skipped whole on the Cauchy–Schwarz norm bound — the
    /// pruning-effectiveness counter a norm-descending layout drives up.
    /// An **exact** decision; never changes results.
    pub blocks_pruned: u64,
    /// Item blocks skipped by approximate early termination (epsilon slack
    /// or block budget) — a result-affecting skip, counted apart from
    /// `blocks_pruned` so the exact-pruning rate stays honest.
    pub blocks_terminated: u64,
    /// Requests scored (or served from cache) under an approximate policy.
    pub approx_requests: u64,
}

impl MetricsReport {
    /// The latency distribution of one pipeline stage.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage as usize]
    }

    /// Fraction of visited item blocks skipped by **exact** threshold
    /// pruning (`0.0` when nothing was scored).  Terminated blocks widen
    /// the denominator but never the numerator.
    pub fn pruned_block_rate(&self) -> f64 {
        let total = self.blocks_scored + self.blocks_pruned + self.blocks_terminated;
        if total == 0 {
            0.0
        } else {
            self.blocks_pruned as f64 / total as f64
        }
    }

    /// Fraction of visited item blocks skipped by **approximate** early
    /// termination (`0.0` when nothing was scored).
    pub fn terminated_block_rate(&self) -> f64 {
        let total = self.blocks_scored + self.blocks_pruned + self.blocks_terminated;
        if total == 0 {
            0.0
        } else {
            self.blocks_terminated as f64 / total as f64
        }
    }

    /// The activity between `baseline` and `self`, where `baseline` is an
    /// earlier report from the same [`ServeMetrics`].  Counters subtract;
    /// histograms diff bucket-by-bucket ([`HistogramSnapshot::since`]), so
    /// window quantiles and means are exact while window maxima are
    /// bucket-bounded.  `queue_depth_high_water` stays cumulative (a
    /// high-water mark has no meaningful difference).
    pub fn since(&self, baseline: &MetricsReport) -> MetricsReport {
        let requests = self.requests.saturating_sub(baseline.requests);
        let hits = self.cache_hits.saturating_sub(baseline.cache_hits);
        let misses = self.cache_misses.saturating_sub(baseline.cache_misses);
        let batches = self.batches.saturating_sub(baseline.batches);
        let batch_items = self.batch_items.saturating_sub(baseline.batch_items);
        let batch_latency = self.batch_latency.since(&baseline.batch_latency);
        MetricsReport {
            requests,
            responses: self.responses.saturating_sub(baseline.responses),
            cache_hits: hits,
            cache_misses: misses,
            batches,
            batch_items,
            batch_size_hist: std::array::from_fn(|i| {
                self.batch_size_hist[i].saturating_sub(baseline.batch_size_hist[i])
            }),
            mean_batch_size: if batches > 0 {
                batch_items as f64 / batches as f64
            } else {
                0.0
            },
            cache_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            mean_batch_latency: Duration::from_nanos(
                batch_latency.sum_ns().checked_div(batches).unwrap_or(0),
            ),
            max_batch_latency: Duration::from_nanos(batch_latency.max_ns()),
            batch_latency,
            stages: std::array::from_fn(|i| self.stages[i].since(&baseline.stages[i])),
            request_e2e: self.request_e2e.since(&baseline.request_e2e),
            publish_latency: self.publish_latency.since(&baseline.publish_latency),
            freshness: self.freshness.since(&baseline.freshness),
            rerank: self.rerank.since(&baseline.rerank),
            bytes_scanned: self.bytes_scanned.saturating_sub(baseline.bytes_scanned),
            rerank_candidates: self
                .rerank_candidates
                .saturating_sub(baseline.rerank_candidates),
            queue_depth_high_water: self.queue_depth_high_water,
            snapshot_swaps: self.snapshot_swaps.saturating_sub(baseline.snapshot_swaps),
            delta_publishes: self
                .delta_publishes
                .saturating_sub(baseline.delta_publishes),
            item_compactions: self
                .item_compactions
                .saturating_sub(baseline.item_compactions),
            worker_panics: self.worker_panics.saturating_sub(baseline.worker_panics),
            worker_restarts: self
                .worker_restarts
                .saturating_sub(baseline.worker_restarts),
            blocks_scored: self.blocks_scored.saturating_sub(baseline.blocks_scored),
            blocks_pruned: self.blocks_pruned.saturating_sub(baseline.blocks_pruned),
            blocks_terminated: self
                .blocks_terminated
                .saturating_sub(baseline.blocks_terminated),
            approx_requests: self
                .approx_requests
                .saturating_sub(baseline.approx_requests),
        }
    }

    /// Renders this report as a [`cumf_obs::Exporter`] metric set with
    /// stable `serve_*` names (`serve_stage_<name>` histograms expand to
    /// `serve_stage_<name>_p50_ns` etc. in the JSON rendering — the keys CI
    /// asserts on).
    pub fn exporter(&self) -> Exporter {
        let mut e = Exporter::new();
        e.counter(
            "serve_requests",
            "requests accepted by the batcher",
            self.requests,
        )
        .counter("serve_responses", "replies delivered", self.responses)
        .counter(
            "serve_cache_hits",
            "results served from cache",
            self.cache_hits,
        )
        .counter("serve_cache_misses", "results scored", self.cache_misses)
        .counter("serve_batches", "micro-batches scored", self.batches)
        .gauge(
            "serve_cache_hit_rate",
            "hits / (hits + misses)",
            self.cache_hit_rate,
        )
        .gauge(
            "serve_mean_batch_size",
            "mean requests per micro-batch",
            self.mean_batch_size,
        )
        .counter(
            "serve_queue_depth_high_water",
            "most requests ever simultaneously queued",
            self.queue_depth_high_water,
        )
        .counter(
            "serve_snapshot_swaps",
            "snapshot generations published",
            self.snapshot_swaps,
        )
        .counter(
            "serve_delta_publishes",
            "publications through the delta path",
            self.delta_publishes,
        )
        .counter(
            "serve_item_compactions",
            "item-segment compaction republishes",
            self.item_compactions,
        )
        .counter(
            "serve_worker_panics",
            "scoring panics caught",
            self.worker_panics,
        )
        .counter(
            "serve_worker_restarts",
            "panicked workers restarted",
            self.worker_restarts,
        )
        .counter(
            "serve_blocks_scored",
            "item blocks streamed and scored",
            self.blocks_scored,
        )
        .counter(
            "serve_blocks_pruned",
            "item blocks skipped exactly",
            self.blocks_pruned,
        )
        .counter(
            "serve_blocks_terminated",
            "item blocks skipped approximately",
            self.blocks_terminated,
        )
        .counter(
            "serve_approx_requests",
            "requests served under an approximate policy",
            self.approx_requests,
        )
        .counter(
            "serve_bytes_scanned",
            "bytes streamed by the blocked scorer (encoded + rerank rows)",
            self.bytes_scanned,
        )
        .counter(
            "serve_rerank_candidates",
            "candidates rescored against exact f32 rows",
            self.rerank_candidates,
        );
        for stage in Stage::ALL {
            e.histogram(
                &format!("serve_stage_{}", stage.name()),
                &format!("per-request {} stage latency", stage.name()),
                self.stage(stage).clone(),
            );
        }
        e.histogram(
            "serve_request_e2e",
            "per-request end-to-end latency (enqueue to reply)",
            self.request_e2e.clone(),
        )
        .histogram(
            "serve_batch_latency",
            "per-micro-batch scoring wall time",
            self.batch_latency.clone(),
        )
        .histogram(
            "serve_delta_publish",
            "publisher-side snapshot/delta publish latency",
            self.publish_latency.clone(),
        )
        .histogram(
            "serve_freshness",
            "rating ingest to first reflecting snapshot publish",
            self.freshness.clone(),
        )
        .histogram(
            "serve_rerank",
            "per-batch exact-f32 rerank pass latency (inside Score)",
            self.rerank.clone(),
        );
        e
    }
}

/// Formats nanoseconds as a humane `Duration` debug string.
fn fmt_ns(ns: u64) -> String {
    format!("{:?}", Duration::from_nanos(ns))
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {}  responses: {}  batches: {}  mean batch {:.2}",
            self.requests, self.responses, self.batches, self.mean_batch_size
        )?;
        writeln!(
            f,
            "cache: {:.1}% hit ({} hit / {} miss)  swaps: {} ({} delta, {} compaction)  \
             worker panics: {} ({} restarted)",
            100.0 * self.cache_hit_rate,
            self.cache_hits,
            self.cache_misses,
            self.snapshot_swaps,
            self.delta_publishes,
            self.item_compactions,
            self.worker_panics,
            self.worker_restarts
        )?;
        writeln!(
            f,
            "pruning: {} blocks scored, {} pruned ({:.1}% exact skip), \
             {} terminated ({:.1}% approx skip)  approx requests: {}",
            self.blocks_scored,
            self.blocks_pruned,
            100.0 * self.pruned_block_rate(),
            self.blocks_terminated,
            100.0 * self.terminated_block_rate(),
            self.approx_requests
        )?;
        writeln!(
            f,
            "scan: {} bytes streamed  rerank: {} candidates rescored",
            self.bytes_scanned, self.rerank_candidates
        )?;
        writeln!(
            f,
            "batch latency: mean {:?}  max {:?}",
            self.mean_batch_latency, self.max_batch_latency
        )?;
        writeln!(
            f,
            "batch sizes [1,2,4,8,16,32,64,128+]: {:?}",
            self.batch_size_hist
        )?;
        writeln!(f, "queue depth high-water: {}", self.queue_depth_high_water)?;
        writeln!(
            f,
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "stage", "p50", "p90", "p99", "max", "count"
        )?;
        let mut rows: Vec<(&str, &HistogramSnapshot)> = Stage::ALL
            .iter()
            .map(|&s| (s.name(), self.stage(s)))
            .collect();
        rows.push(("e2e", &self.request_e2e));
        rows.push(("batch", &self.batch_latency));
        rows.push(("publish", &self.publish_latency));
        rows.push(("freshness", &self.freshness));
        rows.push(("rerank", &self.rerank));
        for (name, h) in rows {
            writeln!(
                f,
                "{:<12} {:>10} {:>10} {:>10} {:>10} {:>8}",
                name,
                fmt_ns(h.quantile(0.5)),
                fmt_ns(h.quantile(0.9)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(h.max_ns()),
                h.count()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sizes_land_in_power_of_two_buckets() {
        let m = ServeMetrics::new();
        for size in [1usize, 2, 3, 4, 7, 8, 127, 128, 4096] {
            m.record_batch(size, Duration::from_micros(10));
        }
        let r = m.report();
        assert_eq!(r.batches, 9);
        assert_eq!(r.batch_size_hist[0], 1); // 1
        assert_eq!(r.batch_size_hist[1], 2); // 2, 3
        assert_eq!(r.batch_size_hist[2], 2); // 4, 7
        assert_eq!(r.batch_size_hist[3], 1); // 8
        assert_eq!(r.batch_size_hist[6], 1); // 127 → bucket 64..127
        assert_eq!(r.batch_size_hist[7], 2); // 128 and 4096 clamp to last
    }

    #[test]
    fn rates_and_latencies_are_derived() {
        let m = ServeMetrics::new();
        for _ in 0..3 {
            m.record_request();
            m.record_response();
        }
        m.record_cache_hit();
        m.record_cache_miss();
        m.record_cache_miss();
        m.record_batch(3, Duration::from_millis(2));
        m.record_batch(1, Duration::from_millis(4));
        m.record_swap();
        let r = m.report();
        assert_eq!(r.requests, 3);
        assert!((r.cache_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.mean_batch_size, 2.0);
        assert_eq!(r.mean_batch_latency, Duration::from_millis(3));
        assert_eq!(r.max_batch_latency, Duration::from_millis(4));
        assert_eq!(r.snapshot_swaps, 1);
    }

    #[test]
    fn empty_metrics_report_is_zeroed() {
        let r = ServeMetrics::new().report();
        assert_eq!(r.requests, 0);
        assert_eq!(r.cache_hit_rate, 0.0);
        assert_eq!(r.mean_batch_latency, Duration::ZERO);
        assert_eq!(r.request_e2e.count(), 0);
        assert_eq!(r.queue_depth_high_water, 0);
    }

    #[test]
    fn stage_histograms_accumulate_and_export() {
        let m = ServeMetrics::new();
        for ns in [1_000u64, 2_000, 10_000] {
            m.record_stage_ns(Stage::QueueWait, ns);
            m.record_stage_ns(Stage::Score, ns * 2);
            m.record_request_e2e_ns(ns * 3);
        }
        let r = m.report();
        assert_eq!(r.stage(Stage::QueueWait).count(), 3);
        assert_eq!(r.stage(Stage::Score).sum_ns(), 26_000);
        assert_eq!(r.stage(Stage::Coalesce).count(), 0);
        assert_eq!(r.request_e2e.max_ns(), 30_000);
        let json = r.exporter().to_json();
        for key in [
            "\"serve_requests\":",
            "\"serve_stage_queue_wait_p50_ns\":",
            "\"serve_stage_queue_wait_p99_ns\":",
            "\"serve_stage_score_p99_ns\":",
            "\"serve_stage_coalesce_count\":0",
            "\"serve_request_e2e_p50_ns\":",
            "\"serve_request_e2e_max_ns\":30000",
            "\"serve_batch_latency_count\":",
            "\"serve_delta_publish_count\":",
            "\"serve_queue_depth_high_water\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let prom = r.exporter().to_prometheus();
        assert!(prom.contains("# TYPE serve_stage_score summary"));
        assert!(prom.contains("serve_request_e2e_count 3"));
    }

    #[test]
    fn windowed_report_resets_the_latency_view() {
        let m = ServeMetrics::new();
        m.record_batch(1, Duration::from_millis(50)); // the spike
        m.record_request();
        let first = m.window_report();
        assert_eq!(first.window.batches, 1);
        assert_eq!(first.window.requests, 1);
        assert_eq!(
            first.cumulative.max_batch_latency,
            Duration::from_millis(50)
        );

        // Quiet window with one fast batch: the window max clears the
        // spike (bucket-bounded around 1 ms), the cumulative max does not.
        m.record_batch(1, Duration::from_millis(1));
        let second = m.window_report();
        assert_eq!(second.window.batches, 1);
        assert_eq!(second.window.requests, 0);
        assert!(second.window.max_batch_latency <= Duration::from_micros(1100));
        assert_eq!(
            second.cumulative.max_batch_latency,
            Duration::from_millis(50)
        );
        assert_eq!(second.cumulative.batches, 2);

        // Idle window: everything zero.
        let third = m.window_report();
        assert_eq!(third.window.batches, 0);
        assert_eq!(third.window.batch_latency.count(), 0);
        assert_eq!(third.window.mean_batch_latency, Duration::ZERO);
    }

    #[test]
    fn queue_depth_tracks_the_high_water_mark() {
        let m = ServeMetrics::new();
        m.record_queue_enter();
        m.record_queue_enter();
        m.record_queue_enter();
        m.record_queue_exit();
        m.record_queue_enter();
        assert_eq!(m.queue_depth(), 3);
        assert_eq!(m.report().queue_depth_high_water, 3);
        m.record_queue_exit();
        m.record_queue_exit();
        m.record_queue_exit();
        assert_eq!(m.queue_depth(), 0);
        // The mark survives the drain.
        assert_eq!(m.report().queue_depth_high_water, 3);
    }

    #[test]
    fn pruning_and_supervisor_counters_accumulate() {
        let m = ServeMetrics::new();
        m.record_pruning(&PruneStats {
            blocks_scored: 6,
            blocks_pruned: 2,
            blocks_terminated: 0,
            ..Default::default()
        });
        m.record_pruning(&PruneStats {
            blocks_scored: 0,
            blocks_pruned: 8,
            blocks_terminated: 0,
            ..Default::default()
        });
        m.record_worker_panic();
        m.record_worker_restart();
        m.record_item_compaction();
        let r = m.report();
        assert_eq!((r.blocks_scored, r.blocks_pruned), (6, 10));
        assert!((r.pruned_block_rate() - 10.0 / 16.0).abs() < 1e-12);
        assert_eq!((r.worker_panics, r.worker_restarts), (1, 1));
        assert_eq!(r.item_compactions, 1);
        assert_eq!(ServeMetrics::new().report().pruned_block_rate(), 0.0);
    }

    #[test]
    fn terminated_blocks_do_not_inflate_the_exact_pruning_rate() {
        // 4 scored + 4 pruned + 8 terminated: the exact skip rate must be
        // 4/16, not 12/16 — the display would otherwise credit approximate
        // truncation to the (result-preserving) norm bound.
        let m = ServeMetrics::new();
        m.record_pruning(&PruneStats {
            blocks_scored: 4,
            blocks_pruned: 4,
            blocks_terminated: 8,
            ..Default::default()
        });
        m.record_approx_requests(3);
        let r = m.report();
        assert_eq!(r.blocks_terminated, 8);
        assert_eq!(r.approx_requests, 3);
        assert!((r.pruned_block_rate() - 4.0 / 16.0).abs() < 1e-12);
        assert!((r.terminated_block_rate() - 8.0 / 16.0).abs() < 1e-12);
        assert_eq!(ServeMetrics::new().report().terminated_block_rate(), 0.0);
        let text = r.to_string();
        assert!(text.contains("8 terminated"));
        assert!(text.contains("approx requests: 3"));
    }

    #[test]
    fn rerank_and_bytes_scanned_flow_to_reports_and_exporter() {
        let m = ServeMetrics::new();
        m.record_pruning(&PruneStats {
            blocks_scored: 3,
            bytes_scanned: 4096,
            rerank_candidates: 20,
            ..Default::default()
        });
        m.record_rerank_ns(5_000);
        m.record_rerank_ns(9_000);
        let first = m.window_report();
        assert_eq!(first.cumulative.bytes_scanned, 4096);
        assert_eq!(first.cumulative.rerank_candidates, 20);
        assert_eq!(first.cumulative.rerank.count(), 2);
        assert_eq!(first.cumulative.rerank.sum_ns(), 14_000);

        // The window diff subtracts counters and diffs the histogram.
        m.record_pruning(&PruneStats {
            bytes_scanned: 100,
            ..Default::default()
        });
        m.record_rerank_ns(1_000);
        let second = m.window_report();
        assert_eq!(second.window.bytes_scanned, 100);
        assert_eq!(second.window.rerank_candidates, 0);
        assert_eq!(second.window.rerank.count(), 1);

        let json = second.cumulative.exporter().to_json();
        for key in [
            "\"serve_bytes_scanned\":4196",
            "\"serve_rerank_candidates\":20",
            "\"serve_rerank_count\":3",
            "\"serve_rerank_p50_ns\":",
            "\"serve_rerank_p99_ns\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = second.cumulative.to_string();
        assert!(text.contains("4196 bytes streamed"));
        assert!(text.contains("20 candidates rescored"));
        assert!(text.contains("rerank"));
    }

    #[test]
    fn display_is_humane() {
        let m = ServeMetrics::new();
        m.record_batch(2, Duration::from_micros(500));
        m.record_stage_ns(Stage::Score, 250_000);
        m.record_request_e2e_ns(400_000);
        let text = m.report().to_string();
        assert!(text.contains("batches: 1"));
        assert!(text.contains("cache"));
        // The percentile table lists every stage plus e2e.
        for row in ["queue_wait", "coalesce", "score", "merge", "reply", "e2e"] {
            assert!(text.contains(row), "missing {row} row in:\n{text}");
        }
        assert!(text.contains("queue depth high-water"));
    }
}

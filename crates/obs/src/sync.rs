//! Synchronization facade: `std::sync` normally, instrumented loom types
//! under `--cfg cumf_model_check`.
//!
//! Every concurrency-bearing module in `cumf-obs` and `cumf-serve` imports
//! its primitives from here (the `cumf-check` lint's `sync-facade` rule
//! enforces it).  In a normal build the re-exports *are* the std types —
//! zero wrappers, zero overhead.  Under the model-check cfg
//! (`RUSTFLAGS="--cfg cumf_model_check"`, see `crates/check`) the same
//! names resolve to `loom`'s instrumented versions, so the histogram,
//! snapshot-store, batcher-gauge, and permit-pool code paths run under the
//! schedule-exploring checker *unchanged*.
//!
//! The facade deliberately exposes only the surface those paths use:
//! `Arc`, `Mutex`/`RwLock` (+ guards), and the `atomic` module.  Anything
//! else would silently run uninstrumented in model builds, which is
//! exactly the hole the lint exists to close.

// lint-ok-file: sync-facade this module IS the facade; it is the one place
// the primitives may be named directly.

#[cfg(not(cumf_model_check))]
pub use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(cumf_model_check)]
pub use loom::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Atomic types and `Ordering`, switched with the same cfg.
pub mod atomic {
    #[cfg(not(cumf_model_check))]
    pub use std::sync::atomic::{
        AtomicBool, AtomicIsize, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };

    #[cfg(cumf_model_check)]
    pub use loom::sync::atomic::{
        AtomicBool, AtomicIsize, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

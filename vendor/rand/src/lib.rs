//! API-compatible shim for [rand](https://docs.rs/rand) 0.9.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of rand's API that `cumf-rs` uses: the [`Rng`] / [`SeedableRng`]
//! traits, [`rngs::StdRng`] (here a xoshiro256++ generator seeded via
//! SplitMix64), `random::<T>()` for the primitive numeric types and
//! `random_range` over integer and float ranges.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` produces a fixed,
//! platform-independent stream for a given `s`.  Tests and the synthetic
//! data generator rely on that, not on any specific stream values, so
//! swapping the real rand crate back in (one line in the root `Cargo.toml`)
//! only changes *which* reproducible stream is drawn.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (rand's convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    // Full-width inclusive range of a 64-bit type; adding 1
                    // to the width would overflow.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    // Full-width inclusive range of a 64-bit type.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (width + 1)) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i32 as u32, i64 as u64);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing random-value methods, rand 0.9 naming.
pub trait Rng: RngCore {
    /// A uniform random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with SplitMix64
    /// (the scheme rand itself documents for `seed_from_u64`).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// (The real rand's `StdRng` is ChaCha12; both are seedable,
    /// platform-independent streams — see the crate docs for the
    /// determinism contract.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A small fast generator; same engine as [`StdRng`] in this shim.
    pub type SmallRng = StdRng;
}

pub use rngs::StdRng;

pub mod prelude {
    //! The traits and types rand's prelude exports.
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn full_width_inclusive_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let _: u64 = rng.random_range(0u64..=u64::MAX);
            let _: i64 = rng.random_range(i64::MIN..=i64::MAX);
            let _: usize = rng.random_range(0usize..=usize::MAX);
            let b = rng.random_range(0u8..=u8::MAX);
            let _ = b;
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}

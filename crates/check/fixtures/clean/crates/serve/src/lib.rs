//! Clean-fixture serve crate: no panics on the request path, facade only.
pub mod sync {
    // lint-ok-file: sync-facade this module IS the facade re-export.
    pub use std::sync::{Mutex, MutexGuard};
}

pub fn lookup(v: &[u32], i: usize) -> Result<u32, String> {
    v.get(i).copied().ok_or_else(|| format!("index {i} out of range"))
}

pub fn guarded(m: &sync::Mutex<u32>) -> u32 {
    // lint-ok: serve-unwrap fixture exercises a justified expect
    *m.lock().expect("fixture mutex never poisoned")
}

//! CCD++ cyclic coordinate descent (Yu et al., ICDM 2012).
//!
//! CCD++ updates one latent dimension at a time: with all other dimensions
//! fixed, the rank-one sub-problem for dimension `k` has a closed-form
//! coordinate update.  Keeping an explicit residual over the observed
//! entries makes each full sweep `O(Nz · f)` — cheaper per iteration than
//! ALS's `O(Nz · f²)`, at the price of less progress per iteration (the
//! trade-off §6.2 of the cuMF paper describes).

use crate::als_util;
use cumf_core::{Engine, TrainMetrics};
use cumf_linalg::FactorMatrix;
use cumf_sparse::{Csc, Csr, Entry};
use rayon::prelude::*;
use std::sync::Arc;

/// Hyper-parameters of the CCD++ solver.
#[derive(Debug, Clone, PartialEq)]
pub struct CcdConfig {
    /// Latent dimension `f`.
    pub f: usize,
    /// L2 regularization.
    pub lambda: f32,
    /// Inner sweeps per rank-one sub-problem.
    pub inner_iterations: usize,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for CcdConfig {
    fn default() -> Self {
        Self {
            f: 32,
            lambda: 0.05,
            inner_iterations: 2,
            seed: 42,
        }
    }
}

/// CCD++ solver with an explicitly maintained residual.
pub struct CcdPlusPlus {
    config: CcdConfig,
    r: Csr,
    r_t: Csc,
    x: FactorMatrix,
    theta: FactorMatrix,
    /// Residual `r_uv − x_uᵀθ_v` aligned with `r`'s value array.
    residual: Vec<f32>,
}

impl CcdPlusPlus {
    /// Builds the solver and initializes the residual from the (random)
    /// initial factors.
    pub fn new(config: CcdConfig, r: &Csr) -> Self {
        let mean = als_util::mean_rating(r);
        let x = als_util::init_factors_to_mean(r.n_rows() as usize, config.f, config.seed, mean);
        let theta =
            als_util::init_factors_to_mean(r.n_cols() as usize, config.f, config.seed ^ 0x33, mean);
        let r_t = r.to_csc();
        let mut solver = Self {
            config,
            r: r.clone(),
            r_t,
            x,
            theta,
            residual: vec![0.0; r.nnz()],
        };
        solver.recompute_residual();
        solver
    }

    fn recompute_residual(&mut self) {
        let x = &self.x;
        let theta = &self.theta;
        let r = &self.r;
        let mut residual = vec![0.0f32; r.nnz()];
        let row_ptr = r.row_ptr().to_vec();
        residual.par_iter_mut().enumerate().for_each(|(idx, res)| {
            // Find the row of this entry by binary search in row_ptr.
            let u = row_ptr.partition_point(|&p| p <= idx) - 1;
            let v = r.col_idx()[idx] as usize;
            *res = r.values()[idx] - cumf_linalg::blas::dot(x.vector(u), theta.vector(v));
        });
        self.residual = residual;
    }

    /// Index of entry `(u, idx_in_row)` in the CSR value array.
    fn entry_index(&self, u: u32, pos_in_row: usize) -> usize {
        self.r.row_ptr()[u as usize] + pos_in_row
    }

    /// One full CCD++ iteration: a sweep over all `f` latent dimensions.
    pub fn sweep(&mut self) {
        let f = self.config.f;
        let lambda = self.config.lambda;

        for k in 0..f {
            // Add the rank-one contribution of dimension k back into the
            // residual: residual += u_k(u) * v_k(v).
            self.add_rank_one_to_residual(k, 1.0);

            for _ in 0..self.config.inner_iterations {
                // Update u_k for every row.
                for u in 0..self.r.n_rows() {
                    let (cols, _) = self.r.row(u);
                    if cols.is_empty() {
                        continue;
                    }
                    let mut num = 0.0f64;
                    let mut den = lambda as f64 * cols.len() as f64;
                    for (pos, &v) in cols.iter().enumerate() {
                        let idx = self.entry_index(u, pos);
                        let vk = self.theta.vector(v as usize)[k] as f64;
                        num += self.residual[idx] as f64 * vk;
                        den += vk * vk;
                    }
                    self.x.vector_mut(u as usize)[k] = (num / den) as f32;
                }
                // Update v_k for every column (walking the CSC mirror).
                for v in 0..self.r_t.n_cols() {
                    let (rows, _) = self.r_t.col(v);
                    if rows.is_empty() {
                        continue;
                    }
                    let mut num = 0.0f64;
                    let mut den = lambda as f64 * rows.len() as f64;
                    for &u in rows {
                        let (cols, _) = self.r.row(u);
                        let pos = cols.binary_search(&v).expect("entry exists in both views");
                        let idx = self.entry_index(u, pos);
                        let uk = self.x.vector(u as usize)[k] as f64;
                        num += self.residual[idx] as f64 * uk;
                        den += uk * uk;
                    }
                    self.theta.vector_mut(v as usize)[k] = (num / den) as f32;
                }
            }

            // Remove the (updated) rank-one contribution from the residual.
            self.add_rank_one_to_residual(k, -1.0);
        }
    }

    fn add_rank_one_to_residual(&mut self, k: usize, sign: f32) {
        let r = &self.r;
        let x = &self.x;
        let theta = &self.theta;
        for u in 0..r.n_rows() {
            let (cols, _) = r.row(u);
            let uk = x.vector(u as usize)[k];
            for (pos, &v) in cols.iter().enumerate() {
                let idx = r.row_ptr()[u as usize] + pos;
                self.residual[idx] += sign * uk * theta.vector(v as usize)[k];
            }
        }
    }

    /// Root-mean-square of the maintained residual (training RMSE computed
    /// incrementally).
    pub fn residual_rmse(&self) -> f64 {
        if self.residual.is_empty() {
            return 0.0;
        }
        let se: f64 = self.residual.iter().map(|&r| (r as f64) * (r as f64)).sum();
        (se / self.residual.len() as f64).sqrt()
    }
}

impl Engine for CcdPlusPlus {
    fn name(&self) -> &'static str {
        "CCD++"
    }

    fn train_sweep(&mut self) -> f64 {
        self.sweep();
        0.0
    }

    fn x(&self) -> &FactorMatrix {
        &self.x
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert_eq!(x.len(), self.x.len(), "X has the wrong number of rows");
        assert_eq!(
            theta.len(),
            self.theta.len(),
            "Θ has the wrong number of rows"
        );
        assert_eq!(x.rank(), self.config.f, "X has the wrong rank");
        assert_eq!(theta.rank(), self.config.f, "Θ has the wrong rank");
        self.x = x;
        self.theta = theta;
        // The residual caches r − XΘᵀ, so replacing the factors invalidates
        // it; CCD++'s correctness depends on it being exact.
        self.recompute_residual();
    }

    fn attach_metrics(&mut self, _metrics: Arc<TrainMetrics>) {}

    fn train_rmse(&self) -> f64 {
        let entries: Vec<Entry> = self.r.iter().collect();
        self.rmse(&entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::SyntheticConfig;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 120,
            n: 80,
            nnz: 4000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    #[test]
    fn ccd_converges() {
        let r = ratings();
        let mut solver = CcdPlusPlus::new(
            CcdConfig {
                f: 8,
                ..Default::default()
            },
            &r,
        );
        let before = solver.train_rmse();
        for _ in 0..5 {
            solver.train_sweep();
        }
        let after = solver.train_rmse();
        assert!(
            after < before * 0.6,
            "CCD++ should converge: {before} -> {after}"
        );
    }

    #[test]
    fn maintained_residual_matches_recomputed_rmse() {
        let r = ratings();
        let mut solver = CcdPlusPlus::new(
            CcdConfig {
                f: 6,
                ..Default::default()
            },
            &r,
        );
        solver.train_sweep();
        let maintained = solver.residual_rmse();
        let recomputed = solver.train_rmse();
        assert!(
            (maintained - recomputed).abs() < 1e-3,
            "residual bookkeeping drifted: {maintained} vs {recomputed}"
        );
    }

    #[test]
    fn initial_residual_matches_initial_rmse() {
        let r = ratings();
        let solver = CcdPlusPlus::new(
            CcdConfig {
                f: 6,
                ..Default::default()
            },
            &r,
        );
        assert!((solver.residual_rmse() - solver.train_rmse()).abs() < 1e-3);
    }

    #[test]
    fn more_inner_iterations_do_not_hurt() {
        let r = ratings();
        let mut one = CcdPlusPlus::new(
            CcdConfig {
                f: 8,
                inner_iterations: 1,
                ..Default::default()
            },
            &r,
        );
        let mut three = CcdPlusPlus::new(
            CcdConfig {
                f: 8,
                inner_iterations: 3,
                ..Default::default()
            },
            &r,
        );
        for _ in 0..3 {
            one.train_sweep();
            three.train_sweep();
        }
        assert!(three.train_rmse() <= one.train_rmse() * 1.05);
    }
}

//! CPU node specifications and cloud prices.
//!
//! Prices are the on-demand US-East prices the paper quotes in Table 1
//! (taken "when submitting this paper", early 2016); the GPU server is the
//! IBM SoftLayer machine with two K80 boards at an amortized $2.44/hour.

/// Specification of one CPU (or GPU-host) node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Node type name, e.g. `"m3.2xlarge"`.
    pub name: &'static str,
    /// Number of hardware threads.
    pub vcpus: u32,
    /// Main memory in GiB.
    pub mem_gib: u32,
    /// Aggregate single-precision compute throughput in GFLOP/s.
    pub flops_gflops: f64,
    /// Sustainable memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Network bandwidth per node in Gbit/s.
    pub net_gbits: f64,
    /// On-demand price in dollars per node per hour.
    pub price_per_hour: f64,
}

impl NodeSpec {
    /// AWS m3.xlarge (4 vCPU, 15 GiB) — NOMAD's AWS node type (Table 1 notes
    /// that the m1.xlarge used by the NOMAD paper is superseded by
    /// m3.xlarge).
    pub fn m3_xlarge() -> Self {
        Self {
            name: "m3.xlarge",
            vcpus: 4,
            mem_gib: 15,
            flops_gflops: 4.0 * 2.5 * 8.0,
            mem_bw_gbs: 20.0,
            net_gbits: 1.0,
            price_per_hour: 0.27,
        }
    }

    /// AWS m3.2xlarge (8 vCPU, 30 GiB) — SparkALS's node type.
    pub fn m3_2xlarge() -> Self {
        Self {
            name: "m3.2xlarge",
            vcpus: 8,
            mem_gib: 30,
            flops_gflops: 8.0 * 2.5 * 8.0,
            mem_bw_gbs: 25.0,
            net_gbits: 1.0,
            price_per_hour: 0.53,
        }
    }

    /// AWS c3.2xlarge (8 vCPU, 15 GiB) — comparable to Factorbird's nodes.
    pub fn c3_2xlarge() -> Self {
        Self {
            name: "c3.2xlarge",
            vcpus: 8,
            mem_gib: 15,
            flops_gflops: 8.0 * 2.8 * 8.0,
            mem_bw_gbs: 25.0,
            net_gbits: 1.0,
            price_per_hour: 0.42,
        }
    }

    /// A 30-core bare-metal machine, the libMF/NOMAD single-machine setting
    /// of §5.2.
    pub fn bare_metal_30core() -> Self {
        Self {
            name: "bare-metal 30-core",
            vcpus: 30,
            mem_gib: 256,
            flops_gflops: 30.0 * 2.5 * 8.0,
            mem_bw_gbs: 60.0,
            net_gbits: 10.0,
            price_per_hour: 2.0,
        }
    }

    /// One node of the 64-node HPC cluster NOMAD uses (§5.4): faster cores
    /// and a much faster interconnect than AWS.
    pub fn hpc_node() -> Self {
        Self {
            name: "HPC node",
            vcpus: 16,
            mem_gib: 64,
            flops_gflops: 16.0 * 2.7 * 16.0,
            mem_bw_gbs: 60.0,
            net_gbits: 40.0,
            price_per_hour: 1.0,
        }
    }

    /// The cuMF machine: one IBM SoftLayer server with two K80 boards
    /// (four GPU devices), amortized at $2.44/hour (Table 1).
    pub fn cumf_gpu_server() -> Self {
        Self {
            name: "SoftLayer 2xK80 server",
            vcpus: 24,
            mem_gib: 256,
            flops_gflops: 4.0 * 4370.0,
            mem_bw_gbs: 4.0 * 240.0,
            net_gbits: 10.0,
            price_per_hour: 2.44,
        }
    }

    /// Effective sustained GFLOP/s for sparse MF kernels: CPUs rarely
    /// sustain more than a modest fraction of peak on irregular sparse
    /// workloads.
    pub fn effective_gflops(&self, efficiency: f64) -> f64 {
        self.flops_gflops * efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_prices_match_the_paper() {
        assert!((NodeSpec::m3_xlarge().price_per_hour - 0.27).abs() < 1e-9);
        assert!((NodeSpec::m3_2xlarge().price_per_hour - 0.53).abs() < 1e-9);
        assert!((NodeSpec::c3_2xlarge().price_per_hour - 0.42).abs() < 1e-9);
        assert!((NodeSpec::cumf_gpu_server().price_per_hour - 2.44).abs() < 1e-9);
    }

    #[test]
    fn gpu_server_has_far_more_flops_than_cpu_nodes() {
        // §1: a GPU has ~10× the flops of a CPU.
        let gpu = NodeSpec::cumf_gpu_server();
        let cpu = NodeSpec::m3_2xlarge();
        assert!(gpu.flops_gflops > 10.0 * cpu.flops_gflops);
    }

    #[test]
    fn effective_flops_scales_with_efficiency() {
        let n = NodeSpec::bare_metal_30core();
        assert!((n.effective_gflops(0.5) - n.flops_gflops * 0.5).abs() < 1e-9);
    }

    #[test]
    fn hpc_interconnect_is_faster_than_aws() {
        assert!(NodeSpec::hpc_node().net_gbits > NodeSpec::m3_xlarge().net_gbits * 10.0);
    }
}

//! Closed-loop load generator for the `cumf-serve` retrieval service.
//!
//! Spawns N client threads that each keep exactly one request in flight
//! (closed loop), against a batching top-k service over a synthetic factor
//! snapshot; user popularity is skewed so the LRU cache sees realistic
//! traffic.  While the clients run, the main thread hot-swaps fresh
//! snapshots to exercise publication under load.  Finishes by printing the
//! achieved throughput, the service's own metrics, and a comparison against
//! naive per-request full-catalog scoring.
//!
//! `--workers` sizes the scorer worker pool and `--shards` the item
//! sharding of each scoring pass (both default to 1, the PR 2 baseline).
//! `--fold-in N` additionally performs N **incremental delta publishes**
//! mid-load: each one genuinely solves a batch of users' normal equations
//! directly against the serving snapshot's item *segments*
//! (`cumf_core::foldin::fold_in_users_segmented` — no contiguous
//! catalog-order Θ is ever materialized) and publishes the changed rows
//! through the `O(u·f)` copy-on-write path with targeted cache
//! invalidation.
//!
//! `--stream N` closes the online loop end to end: N synthetic rating
//! events (a skewed re-rate mix plus a trickle of brand-new users past the
//! catalog edge) are replayed through `cumf_serve::OnlineLoop` —
//! mini-batched ingestion → incremental update → delta publish — against
//! the live service while the clients keep reading.  `--stream-mode`
//! selects the updater (`fold-in`, the default, or `sgd`), and every
//! event's ingest→publish latency lands in the `serve_freshness` histogram
//! of the exported metrics.  The run fails if any event goes missing from
//! the freshness histogram or if a streamed delta copies item factors.
//!
//! The run **fails** (non-zero exit) if any worker panicked, if any request
//! on this warm catalog (every item trained, no exclusions, catalog ≥ k)
//! came back with fewer than `k` results — the result-shrink regression
//! class the pre-PR-3 Cosine bug belonged to — or if a fold-in delta was
//! rejected.
//!
//! `--recall FLOOR` adds an approximate-retrieval gate after the load
//! phase: recall@k of the `--approx-epsilon` policy (default
//! [`cumf_serve::DEFAULT_APPROX_EPSILON`]) is measured against exact
//! ground truth on the live snapshot, and the run fails if mean recall
//! falls below `FLOOR`, if any exact-mode request through the live service
//! diverges from ground truth, or if any approximate list comes back
//! short.
//!
//! `--precision f32|f16|i8` serves the catalog at the given storage
//! precision (quantized segments decoded tile-by-tile at scan time, with
//! the exact-f32 rerank re-scoring the over-fetched candidates).  With a
//! quantized precision, `--recall FLOOR` gates the **post-rerank** recall
//! of the quantized path against the exact-f32 ground truth instead of the
//! epsilon gate, asserts the quantized scan moved strictly fewer bytes than
//! the exact baseline, and requires the `serve_rerank` histogram to have
//! recorded the load-phase traffic.
//!
//! `--metrics-json PATH` turns on the observability reporter: a sidecar
//! thread polls [`cumf_serve::TopKService::window_report`] every 250 ms and
//! prints a one-line since-last-poll summary (requests, e2e p50/p99, queue
//! depth) while the load runs, and on completion the **cumulative** metrics
//! — per-stage latency percentiles included — are exported as flat JSON to
//! `PATH` for CI to assert on.  `--trace-jsonl PATH` additionally dumps the
//! sampled per-request stage traces (1-in-`trace_sample`) as JSONL.
//!
//! ```text
//! usage: serve_load_gen [--users N] [--items N] [--f F] [--requests N]
//!                       [--clients N] [--k K] [--publishes N] [--fold-in N]
//!                       [--stream N] [--stream-mode fold-in|sgd]
//!                       [--naive-sample N] [--workers N] [--shards N]
//!                       [--recall FLOOR] [--approx-epsilon EPS]
//!                       [--precision f32|f16|i8]
//!                       [--metrics-json PATH] [--trace-jsonl PATH]
//! ```
//!
//! CI runs `--requests 200 --workers 4 --shards 4 --fold-in 2 --stream 96
//! --recall 0.95` as an end-to-end smoke test of the sharded-pool serving
//! path, the incremental fold-in → delta-publish path, the closed online
//! loop with its freshness histogram, and the approximate-retrieval recall
//! floor.

use cumf_core::als::BaseAls;
use cumf_core::config::AlsConfig;
use cumf_core::foldin::{fold_in_users_segmented, ratings_rows};
use cumf_core::sgd::{SgdConfig, SgdEngine};
use cumf_data::stream::{ReplayStream, StreamBatcher};
use cumf_linalg::blas::dot;
use cumf_linalg::{FactorMatrix, Precision};
use cumf_serve::{
    measure_recall, report_from_lists, ApproxPolicy, FactorSnapshot, OnlineLoop, OnlineLoopConfig,
    OnlineReport, Query, ServeConfig, TopKIndex, TopKService, DEFAULT_APPROX_EPSILON,
};
use cumf_sparse::{Csr, Entry};
use rand::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which incremental updater `--stream` drives through the online loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamMode {
    FoldIn,
    Sgd,
}

impl StreamMode {
    fn name(self) -> &'static str {
        match self {
            StreamMode::FoldIn => "fold-in",
            StreamMode::Sgd => "sgd",
        }
    }
}

#[derive(Debug, Clone)]
struct Args {
    users: usize,
    items: usize,
    f: usize,
    requests: usize,
    clients: usize,
    k: usize,
    publishes: usize,
    fold_in: usize,
    /// Rating events to replay through the closed online loop (0 = off).
    stream: usize,
    /// Incremental updater for the `--stream` loop.
    stream_mode: StreamMode,
    naive_sample: usize,
    workers: usize,
    shards: usize,
    /// Mean-recall floor for the post-load approximate gate (`None` skips
    /// the gate entirely).
    recall: Option<f64>,
    /// Epsilon of the policy the recall gate measures.
    approx_epsilon: f32,
    /// Storage precision of the served item segments.
    precision: Precision,
    /// Where to write the final cumulative metrics as flat JSON (also
    /// enables the 250 ms windowed reporter while the load runs).
    metrics_json: Option<std::path::PathBuf>,
    /// Where to dump the sampled per-request stage traces as JSONL.
    trace_jsonl: Option<std::path::PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            users: 10_000,
            items: 100_000,
            f: 32,
            requests: 10_000,
            clients: 8,
            k: 10,
            publishes: 2,
            fold_in: 0,
            stream: 0,
            stream_mode: StreamMode::FoldIn,
            naive_sample: 50,
            workers: 1,
            shards: 1,
            recall: None,
            approx_epsilon: DEFAULT_APPROX_EPSILON,
            precision: Precision::F32,
            metrics_json: None,
            trace_jsonl: None,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            println!(
                "usage: serve_load_gen [--users N] [--items N] [--f F] [--requests N] \
                 [--clients N] [--k K] [--publishes N] [--fold-in N] [--stream N] \
                 [--stream-mode fold-in|sgd] [--naive-sample N] \
                 [--workers N] [--shards N] [--recall FLOOR] [--approx-epsilon EPS] \
                 [--precision f32|f16|i8] [--metrics-json PATH] [--trace-jsonl PATH]"
            );
            std::process::exit(0);
        }
        let raw = argv
            .get(i + 1)
            .unwrap_or_else(|| panic!("missing value for {flag}"));
        let int = |raw: &str| {
            raw.parse::<usize>()
                .unwrap_or_else(|e| panic!("bad value for {flag}: {e}"))
        };
        let float = |raw: &str| {
            raw.parse::<f64>()
                .unwrap_or_else(|e| panic!("bad value for {flag}: {e}"))
        };
        match flag {
            "--users" => args.users = int(raw),
            "--items" => args.items = int(raw),
            "--f" => args.f = int(raw),
            "--requests" => args.requests = int(raw),
            "--clients" => args.clients = int(raw).max(1),
            "--k" => args.k = int(raw),
            "--publishes" => args.publishes = int(raw),
            "--fold-in" => args.fold_in = int(raw),
            "--stream" => args.stream = int(raw),
            "--stream-mode" => {
                args.stream_mode = match raw.as_str() {
                    "fold-in" => StreamMode::FoldIn,
                    "sgd" => StreamMode::Sgd,
                    other => panic!("bad value for --stream-mode: {other} (fold-in|sgd)"),
                }
            }
            "--naive-sample" => args.naive_sample = int(raw),
            "--workers" => args.workers = int(raw).max(1),
            "--shards" => args.shards = int(raw).max(1),
            "--recall" => {
                let floor = float(raw);
                assert!(
                    (0.0..=1.0).contains(&floor),
                    "--recall must be within [0, 1], got {floor}"
                );
                args.recall = Some(floor);
            }
            "--approx-epsilon" => args.approx_epsilon = float(raw) as f32,
            "--precision" => {
                args.precision = Precision::parse(raw)
                    .unwrap_or_else(|| panic!("bad value for --precision: {raw} (f32|f16|i8)"))
            }
            "--metrics-json" => args.metrics_json = Some(raw.into()),
            "--trace-jsonl" => args.trace_jsonl = Some(raw.into()),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    args
}

fn snapshot(args: &Args, seed: u64) -> FactorSnapshot {
    FactorSnapshot::from_factors(
        FactorMatrix::random(args.users, args.f, 0.5, seed),
        FactorMatrix::random(args.items, args.f, 0.5, seed ^ 0xABCD),
    )
}

/// Zipf-ish skew: squaring a uniform sample concentrates traffic on low
/// user ids, the way real request logs concentrate on active users.
fn skewed_user(rng: &mut StdRng, users: usize) -> u32 {
    let u: f64 = rng.random::<f64>();
    ((u * u * users as f64) as usize).min(users - 1) as u32
}

fn main() {
    let args = parse_args();
    println!(
        "serve_load_gen: {} requests, {} clients, catalog {} items, {} users, f={}, k={}, \
         {} workers, {} item shards, {} item segments",
        args.requests,
        args.clients,
        args.items,
        args.users,
        args.f,
        args.k,
        args.workers,
        args.shards,
        args.precision,
    );

    let initial = snapshot(&args, 1);

    // Naive baseline: score the whole catalog and sort, per request.
    let naive_sample = args.naive_sample.min(args.requests).max(1);
    let naive_start = Instant::now();
    let mut rng = StdRng::seed_from_u64(7);
    let naive_theta = initial.item_factors_matrix();
    for _ in 0..naive_sample {
        let user = skewed_user(&mut rng, args.users);
        let x_u = initial.user_vector(user).expect("user in range");
        let theta = &naive_theta;
        let mut scored: Vec<(u32, f32)> = (0..theta.len() as u32)
            .map(|v| (v, dot(x_u, theta.vector(v as usize))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(args.k);
        std::hint::black_box(scored);
    }
    let naive_per_request = naive_start.elapsed() / naive_sample as u32;
    let naive_rps = 1.0 / naive_per_request.as_secs_f64();
    println!(
        "naive per-request scoring: {naive_per_request:?}/request ({naive_rps:.0} req/s single-threaded, {naive_sample} sampled)"
    );

    // Batched serving under closed-loop load, on the configured pool.
    let service = TopKService::start(
        initial,
        ServeConfig {
            workers: args.workers,
            shards: args.shards,
            precision: args.precision,
            ..Default::default()
        },
    );
    let served = AtomicU64::new(0);
    let short_results = AtomicU64::new(0);
    let mut fold_in_failures = 0u64;
    let mut stream_report: Option<OnlineReport> = None;
    let start = Instant::now();
    let per_client = args.requests / args.clients;
    let remainder = args.requests % args.clients;
    std::thread::scope(|s| {
        // Windowed observability reporter: a since-last-poll view of the
        // pipeline every 250 ms while the clients run.  Exits once every
        // request has been served, so the scope can join.
        if args.metrics_json.is_some() {
            let service = &service;
            let served = &served;
            let total = args.requests as u64;
            s.spawn(move || loop {
                std::thread::sleep(Duration::from_millis(250));
                let done = served.load(Ordering::Relaxed) >= total;
                let w = service.window_report();
                println!(
                    "[window] {} req  e2e p50 {:?} p99 {:?}  score p99 {:?}  queue hwm {}",
                    w.window.requests,
                    Duration::from_nanos(w.window.request_e2e.quantile(0.5)),
                    Duration::from_nanos(w.window.request_e2e.quantile(0.99)),
                    Duration::from_nanos(w.window.stage(cumf_serve::Stage::Score).quantile(0.99)),
                    w.cumulative.queue_depth_high_water
                );
                if done {
                    break;
                }
            });
        }
        for c in 0..args.clients {
            let client = service.client();
            let served = &served;
            let short_results = &short_results;
            let args = &args;
            let budget = per_client + usize::from(c < remainder);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + c as u64);
                for _ in 0..budget {
                    let user = skewed_user(&mut rng, args.users);
                    let recs = client
                        .recommend(user, args.k, &[])
                        .expect("service alive for the whole run");
                    assert!(recs.len() <= args.k);
                    // Warm catalog, no exclusions, catalog >= k: anything
                    // short of k results is a shrink regression.
                    if recs.len() < args.k.min(args.items) {
                        short_results.fetch_add(1, Ordering::Relaxed);
                    }
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Hot-swap fresh snapshots while the clients hammer the service.
        for p in 0..args.publishes {
            std::thread::sleep(Duration::from_millis(20));
            let generation = service.publish(snapshot(&args, 2 + p as u64));
            println!("published snapshot generation {generation} mid-load");
        }
        // Incremental fold-ins: solve a small batch of users' normal
        // equations against the frozen item factors and publish only their
        // rows through the copy-on-write delta path.
        let mut rng = StdRng::seed_from_u64(4242);
        for fi in 0..args.fold_in {
            std::thread::sleep(Duration::from_millis(20));
            let snap = service.snapshot();
            let batch_users: Vec<u32> =
                (0..16).map(|_| skewed_user(&mut rng, args.users)).collect();
            let rating_lists: Vec<Vec<(u32, f32)>> = batch_users
                .iter()
                .map(|_| {
                    (0..20)
                        .map(|_| {
                            let item = ((rng.random::<f64>() * args.items as f64) as u32)
                                .min(args.items as u32 - 1);
                            (item, 1.0 + rng.random::<f32>() * 4.0)
                        })
                        .collect()
                })
                .collect();
            let ratings = ratings_rows(&rating_lists, args.items as u32);
            // The segmented solve reads the serving segments in place —
            // no contiguous catalog-order Θ is ever materialized.
            let rows = fold_in_users_segmented(&ratings, &snap.items().views(), args.f, 0.05);
            let mut delta = snap.delta();
            for (i, &u) in batch_users.iter().enumerate() {
                delta.update_user(u, rows.vector(i));
            }
            match service.publish_delta(&delta) {
                Ok((generation, stats)) => {
                    if stats.item_factor_bytes_copied != 0 {
                        fold_in_failures += 1;
                        eprintln!(
                            "fold-in {fi}: copied {} item factor bytes — the incremental \
                             path must never touch Θ",
                            stats.item_factor_bytes_copied
                        );
                    }
                    println!(
                        "fold-in {fi}: delta generation {generation} ({} users, \
                         {} factor bytes copied, {} blocks shared)",
                        stats.changed_users,
                        stats.user_factor_bytes_copied,
                        stats.user_blocks_shared
                    )
                }
                Err(e) => {
                    fold_in_failures += 1;
                    eprintln!("fold-in {fi} rejected: {e}");
                }
            }
        }
        // Closed online loop: replay synthetic rating events through
        // ingestion → incremental update → delta publish against the live
        // service, so every event's ingest→publish freshness lands in the
        // exported `serve_freshness` histogram while clients keep reading.
        if args.stream > 0 {
            let mut rng = StdRng::seed_from_u64(9898);
            let events: Vec<Entry> = (0..args.stream)
                .map(|i| {
                    // Mostly re-rates from the skewed existing population,
                    // plus a trickle of brand-new users past the catalog
                    // edge to exercise the append path.
                    let row = if i % 16 == 15 {
                        (args.users + i % 4) as u32
                    } else {
                        skewed_user(&mut rng, args.users)
                    };
                    let col = ((rng.random::<f64>() * args.items as f64) as u32)
                        .min(args.items as u32 - 1);
                    Entry {
                        row,
                        col,
                        val: 1.0 + rng.random::<f32>() * 4.0,
                    }
                })
                .collect();
            let batcher =
                StreamBatcher::spawn(ReplayStream::from_entries(events, args.items as u32), 256);
            // The loop's engine contributes only its rank and λ: fold-in
            // re-solves against the *published snapshot's* item segments
            // and SGD absorbs the stream itself, so an empty training
            // matrix over the catalog is the honest seed.
            let empty = Csr::from_raw(0, args.items as u32, vec![0], vec![], vec![])
                .expect("empty training matrix");
            let config = OnlineLoopConfig {
                max_batch_events: 64,
                ..Default::default()
            };
            let metrics = service.metrics_handle();
            let report = match args.stream_mode {
                StreamMode::FoldIn => OnlineLoop::fold_in(
                    Box::new(BaseAls::new(
                        AlsConfig {
                            f: args.f,
                            lambda: 0.05,
                            ..Default::default()
                        },
                        empty.clone(),
                    )),
                    &empty,
                    batcher,
                    &service,
                    metrics,
                    config,
                )
                .run(),
                StreamMode::Sgd => OnlineLoop::sgd(
                    SgdEngine::new(
                        SgdConfig {
                            f: args.f,
                            lambda: 0.05,
                            ..Default::default()
                        },
                        empty,
                    ),
                    batcher,
                    &service,
                    metrics,
                    config,
                )
                .run(),
            }
            .expect("online stream publish failed");
            println!(
                "stream[{}]: {} events in {} batches → {} delta publishes \
                 ({} user rows updated, {} appended), generation {}",
                args.stream_mode.name(),
                report.events,
                report.batches,
                report.publishes,
                report.users_updated,
                report.users_appended,
                report.last_generation
            );
            stream_report = Some(report);
        }
    });
    let elapsed = start.elapsed();
    let total = served.load(Ordering::Relaxed);
    let rps = total as f64 / elapsed.as_secs_f64();

    println!("batched serving: {total} requests in {elapsed:.2?} → {rps:.0} req/s");
    println!(
        "speedup over naive single-threaded scoring: {:.1}×",
        rps / naive_rps
    );
    println!("--- service metrics ---");
    let metrics = service.metrics();
    println!("{metrics}");

    // Machine-readable exports for CI and offline analysis.
    if let Some(path) = &args.metrics_json {
        let json = metrics.exporter().to_json();
        std::fs::write(path, &json).expect("write --metrics-json file");
        println!("wrote cumulative metrics JSON to {}", path.display());
    }
    if let Some(path) = &args.trace_jsonl {
        let jsonl = service.traces_jsonl();
        std::fs::write(path, &jsonl).expect("write --trace-jsonl file");
        println!(
            "wrote {} sampled stage traces to {}",
            jsonl.lines().count(),
            path.display()
        );
    }

    assert_eq!(
        total as usize, args.requests,
        "every request must be served"
    );
    // A worker panic is a failed run even if every request squeaked through
    // on the survivors: CI smoke treats this as the red flag it is.
    if metrics.worker_panics > 0 {
        eprintln!(
            "FAIL: {} worker(s) panicked during the run: {:?}",
            metrics.worker_panics,
            service.poisoned()
        );
        std::process::exit(1);
    }
    // Every item in this catalog is trained and no request excludes
    // anything, so a result shorter than k is a shrink regression (the
    // pre-PR-3 Cosine zero-norm bug class) — fail the smoke run on it.
    let short = short_results.load(Ordering::Relaxed);
    if short > 0 {
        eprintln!(
            "FAIL: {short} request(s) returned fewer than k={} results on a warm catalog",
            args.k
        );
        std::process::exit(1);
    }
    if fold_in_failures > 0 {
        eprintln!("FAIL: {fold_in_failures} fold-in delta publish(es) were rejected");
        std::process::exit(1);
    }
    // Closed-loop gate: every streamed rating must have been reflected in a
    // published snapshot exactly once, with a well-formed freshness
    // distribution.
    if let Some(report) = stream_report {
        let fresh = &metrics.freshness;
        println!(
            "stream freshness: {} events, ingest→publish p50 {:?} p99 {:?} max {:?}",
            fresh.count(),
            Duration::from_nanos(fresh.quantile(0.5)),
            Duration::from_nanos(fresh.quantile(0.99)),
            Duration::from_nanos(fresh.max_ns()),
        );
        if report.events != args.stream as u64 || fresh.count() != args.stream as u64 {
            eprintln!(
                "FAIL: streamed {} events but the loop reflected {} and the freshness \
                 histogram recorded {}",
                args.stream,
                report.events,
                fresh.count()
            );
            std::process::exit(1);
        }
        if fresh.quantile(0.99) < fresh.quantile(0.5) {
            eprintln!("FAIL: freshness histogram is malformed (p99 below p50)");
            std::process::exit(1);
        }
    }

    // Approximate-retrieval gate: measured recall@k of the configured
    // epsilon against exact ground truth on the snapshot the service is
    // actually serving, plus a live-service divergence check — exact-mode
    // requests must match ground truth bit-for-bit even when approximate
    // traffic shares the same workers and cache.
    // Quantized-serving gate: post-rerank recall of the quantized path
    // against exact-f32 ground truth (re-derived from the retained exact
    // rows), a strict bytes-moved win, full-length live replies, and a
    // populated rerank histogram.
    if let Some(floor) = args.recall.filter(|_| args.precision != Precision::F32) {
        let snap = service.snapshot();
        assert_eq!(
            snap.items().precision(),
            args.precision,
            "service must be serving the requested precision"
        );
        let exact_snap = Arc::new(snap.reencoded(Precision::F32));
        let config = ServeConfig::default();
        let mut rng = StdRng::seed_from_u64(777);
        let queries: Vec<Query> = (0..128)
            .map(|_| Query::new(skewed_user(&mut rng, args.users), args.k))
            .collect();
        let truth = TopKIndex::with_shards(
            Arc::clone(&exact_snap),
            config.item_block,
            config.score,
            args.shards,
        );
        let quant = TopKIndex::with_shards(
            Arc::clone(&snap),
            config.item_block,
            config.score,
            args.shards,
        );
        let (want, want_stats) = truth.query_batch_stats(&queries);
        let (got, got_stats) = quant.query_batch_stats(&queries);
        let quant_bytes = got_stats.bytes_scanned;
        let report = report_from_lists(&want, &got, want_stats, got_stats);
        println!(
            "quantized recall gate ({}, floor {floor:.2}): {report}; bytes {quant_bytes} vs \
             exact {} ({:.2}x)",
            args.precision,
            want_stats.bytes_scanned,
            want_stats.bytes_scanned as f64 / quant_bytes as f64,
        );
        if report.mean_recall < floor {
            eprintln!(
                "FAIL: {} post-rerank mean recall {:.4} below the {floor:.2} floor",
                args.precision, report.mean_recall
            );
            std::process::exit(1);
        }
        if quant_bytes >= want_stats.bytes_scanned {
            eprintln!(
                "FAIL: {} scan moved {quant_bytes} bytes, not fewer than the exact {}",
                args.precision, want_stats.bytes_scanned
            );
            std::process::exit(1);
        }
        let client = service.client();
        let mut short_quant = 0u64;
        for q in queries.iter().take(32) {
            let recs = client
                .recommend(q.user, q.k, &[])
                .expect("service alive for the gate");
            if recs.len() < args.k.min(args.items) {
                short_quant += 1;
            }
        }
        if short_quant > 0 {
            eprintln!(
                "FAIL: {short_quant} quantized request(s) came back short through the service"
            );
            std::process::exit(1);
        }
        // The load phase itself must have exercised the rerank: every
        // scored batch over a quantized store rescoring its over-fetch.
        if metrics.rerank.count() == 0 || metrics.rerank_candidates == 0 {
            eprintln!(
                "FAIL: quantized load recorded no rerank activity (count {}, candidates {})",
                metrics.rerank.count(),
                metrics.rerank_candidates
            );
            std::process::exit(1);
        }
        if metrics.bytes_scanned == 0 {
            eprintln!("FAIL: quantized load recorded no scanned bytes");
            std::process::exit(1);
        }
    }

    if let Some(floor) = args.recall.filter(|_| args.precision == Precision::F32) {
        let policy = ApproxPolicy {
            epsilon: args.approx_epsilon,
            target_recall: floor,
            ..ApproxPolicy::default()
        };
        let snap = service.snapshot();
        let mut rng = StdRng::seed_from_u64(777);
        let queries: Vec<Query> = (0..128)
            .map(|_| Query::new(skewed_user(&mut rng, args.users), args.k))
            .collect();
        let config = ServeConfig::default();
        let report = measure_recall(
            &snap,
            &queries,
            config.item_block,
            config.score,
            args.shards,
            &policy,
        );
        println!(
            "recall gate (epsilon {:.2}, floor {floor:.2}): {report}",
            args.approx_epsilon
        );
        if report.mean_recall < floor {
            eprintln!(
                "FAIL: mean recall {:.4} below the {floor:.2} floor at epsilon {:.2}",
                report.mean_recall, args.approx_epsilon
            );
            std::process::exit(1);
        }
        let truth = TopKIndex::with_shards(
            Arc::clone(&snap),
            config.item_block,
            config.score,
            args.shards,
        );
        let client = service.client();
        let mut exact_divergent = 0u64;
        let mut short_approx = 0u64;
        for q in queries.iter().take(32) {
            let expect = truth.query_batch(std::slice::from_ref(q)).remove(0);
            let exact = client
                .recommend_exact(q.user, q.k, &[])
                .expect("service alive for the gate");
            if exact != expect {
                exact_divergent += 1;
            }
            let approx = client
                .recommend_approx(q.user, q.k, &[], policy)
                .expect("service alive for the gate");
            if approx.len() < expect.len() {
                short_approx += 1;
            }
        }
        if exact_divergent > 0 {
            eprintln!("FAIL: {exact_divergent} exact-mode request(s) diverged from ground truth");
            std::process::exit(1);
        }
        if short_approx > 0 {
            eprintln!(
                "FAIL: {short_approx} approximate request(s) returned fewer results than exact"
            );
            std::process::exit(1);
        }
    }
}

//! Stochastic gradient descent reference (equation (4) of the paper).
//!
//! cuMF deliberately chooses ALS over SGD because SGD's updates to the same
//! row conflict and are hard to spread over thousands of GPU cores (§2.1).
//! This sequential SGD exists as a numerical reference: tests use it to
//! confirm that ALS reaches comparable training error in far fewer
//! iterations, and the baseline crate builds its parallel SGD variants on
//! the same update rule.

use crate::engine::{Engine, IncrementalEngine};
use crate::instrument::TrainMetrics;
use crate::loss;
use cumf_linalg::blas::dot;
use cumf_linalg::FactorMatrix;
use cumf_sparse::{Csr, Entry};
use rand::prelude::*;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Hyper-parameters of the SGD reference.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdConfig {
    /// Latent dimension `f`.
    pub f: usize,
    /// Learning rate `α`.
    pub learning_rate: f32,
    /// Regularization `λ` (plain L2, as in equation (4)).
    pub lambda: f32,
    /// Number of epochs (full passes over the ratings).
    pub epochs: usize,
    /// Multiplicative learning-rate decay applied after every epoch.
    pub decay: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            f: 32,
            learning_rate: 0.01,
            lambda: 0.05,
            epochs: 20,
            decay: 0.95,
            seed: 42,
        }
    }
}

/// A plain sequential SGD matrix factorizer.
#[derive(Debug, Clone)]
pub struct SgdReference {
    config: SgdConfig,
    r: Csr,
    x: FactorMatrix,
    theta: FactorMatrix,
}

impl SgdReference {
    /// Creates the factorizer with random initial factors.
    pub fn new(config: SgdConfig, r: Csr) -> Self {
        let scale = 1.0 / (config.f as f32).sqrt();
        let x = FactorMatrix::random(r.n_rows() as usize, config.f, scale, config.seed);
        let theta =
            FactorMatrix::random(r.n_cols() as usize, config.f, scale, config.seed ^ 0xABCD);
        Self {
            config,
            r,
            x,
            theta,
        }
    }

    /// Current user factors.
    pub fn x(&self) -> &FactorMatrix {
        &self.x
    }

    /// Current item factors.
    pub fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    /// Runs one epoch (a shuffled pass over every rating) and returns the
    /// learning rate that was used.
    pub fn epoch(&mut self, epoch_index: usize) -> f32 {
        let alpha = self.config.learning_rate * self.config.decay.powi(epoch_index as i32);
        let lambda = self.config.lambda;
        let f = self.config.f;

        // Shuffle the visit order of all ratings.
        let mut order: Vec<(u32, u32, f32)> =
            self.r.iter().map(|e| (e.row, e.col, e.val)).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ (epoch_index as u64 + 1));
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }

        for (u, v, r_uv) in order {
            let (u, v) = (u as usize, v as usize);
            let err = r_uv - dot(self.x.vector(u), self.theta.vector(v));
            for k in 0..f {
                let xu = self.x.vector(u)[k];
                let tv = self.theta.vector(v)[k];
                self.x.vector_mut(u)[k] = xu + alpha * (err * tv - lambda * xu);
                self.theta.vector_mut(v)[k] = tv + alpha * (err * xu - lambda * tv);
            }
        }
        alpha
    }

    /// Runs all configured epochs.
    pub fn run(&mut self) {
        for e in 0..self.config.epochs {
            self.epoch(e);
        }
    }

    /// Training RMSE of the current factors.
    pub fn train_rmse(&self) -> f64 {
        loss::rmse_csr(&self.x, &self.theta, &self.r)
    }
}

/// A factor matrix whose elements are individually atomic, so parallel SGD
/// epochs can race on them HOGWILD!-style without locks or unsafe code.
struct AtomicFactors {
    f: usize,
    data: Vec<AtomicU32>,
}

impl AtomicFactors {
    fn from_factor_matrix(m: &FactorMatrix) -> Self {
        Self {
            f: m.rank(),
            data: m
                .data()
                .iter()
                .map(|&v| AtomicU32::new(v.to_bits()))
                .collect(),
        }
    }

    fn n_rows(&self) -> usize {
        self.data.len() / self.f
    }

    fn to_factor_matrix(&self) -> FactorMatrix {
        FactorMatrix::from_vec(
            self.n_rows(),
            self.f,
            self.data
                .iter()
                .map(|a| f32::from_bits(a.load(Ordering::Relaxed))) // relaxed-ok: Hogwild! reads are racy by design; SGD tolerates stale components
                .collect(),
        )
    }

    #[inline]
    fn load(&self, row: usize, k: usize) -> f32 {
        f32::from_bits(self.data[row * self.f + k].load(Ordering::Relaxed)) // relaxed-ok: Hogwild! reads are racy by design; SGD tolerates stale components
    }

    #[inline]
    fn store(&self, row: usize, k: usize, v: f32) {
        self.data[row * self.f + k].store(v.to_bits(), Ordering::Relaxed); // relaxed-ok: Hogwild! lock-free write; lost updates are the algorithm's stated trade
    }

    /// Appends `rows`, copying their values from `tail`.
    fn append(&mut self, tail: &FactorMatrix) {
        assert_eq!(tail.rank(), self.f, "appended rows have the wrong rank");
        self.data
            .extend(tail.data().iter().map(|&v| AtomicU32::new(v.to_bits())));
    }

    /// Copies one row out into `dst`.
    fn read_row_into(&self, row: usize, dst: &mut [f32]) {
        for (k, slot) in dst.iter_mut().enumerate() {
            *slot = self.load(row, k);
        }
    }
}

/// The paper's SGD update rule promoted to a first-class incremental
/// [`Engine`]: HOGWILD!-style lock-free parallel epochs for batch training
/// plus [`SgdEngine::absorb`] for applying streamed rating mutations without
/// a full retrain.
///
/// The sequential [`SgdReference`] above stays as the numerical ground truth;
/// this engine is what the online loop drives.
pub struct SgdEngine {
    config: SgdConfig,
    r: Csr,
    entries: Vec<Entry>,
    x_atomic: AtomicFactors,
    theta_atomic: AtomicFactors,
    // Cached snapshots backing the `Engine` accessors.
    x_snapshot: FactorMatrix,
    theta_snapshot: FactorMatrix,
    epoch: usize,
    metrics: Option<Arc<TrainMetrics>>,
}

impl SgdEngine {
    /// Builds the engine with random initial factors.
    pub fn new(config: SgdConfig, r: Csr) -> Self {
        let scale = 1.0 / (config.f as f32).sqrt();
        let x = FactorMatrix::random(r.n_rows() as usize, config.f, scale, config.seed);
        let theta =
            FactorMatrix::random(r.n_cols() as usize, config.f, scale, config.seed ^ 0xABCD);
        let mut entries: Vec<Entry> = r.iter().collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for i in (1..entries.len()).rev() {
            let j = rng.random_range(0..=i);
            entries.swap(i, j);
        }
        Self {
            x_atomic: AtomicFactors::from_factor_matrix(&x),
            theta_atomic: AtomicFactors::from_factor_matrix(&theta),
            x_snapshot: x,
            theta_snapshot: theta,
            entries,
            config,
            r,
            epoch: 0,
            metrics: None,
        }
    }

    /// The learning rate the next update will use.
    pub fn alpha(&self) -> f32 {
        self.config.learning_rate * self.config.decay.powi(self.epoch as i32)
    }

    /// Number of user rows currently held (grows as streamed ratings
    /// introduce users beyond the training matrix).
    pub fn n_users(&self) -> usize {
        self.x_atomic.n_rows()
    }

    /// Grows the user factors so ids `< n` exist, initializing new rows
    /// randomly at the training scale.
    fn ensure_users(&mut self, n: usize) {
        let have = self.x_atomic.n_rows();
        if n <= have {
            return;
        }
        let scale = 1.0 / (self.config.f as f32).sqrt();
        let tail = FactorMatrix::random(
            n - have,
            self.config.f,
            scale,
            self.config.seed ^ (have as u64).rotate_left(17),
        );
        self.x_atomic.append(&tail);
        let mut data = self.x_snapshot.data().to_vec();
        data.extend_from_slice(tail.data());
        self.x_snapshot = FactorMatrix::from_vec(n, self.config.f, data);
    }

    /// Applies one SGD step for a single rating against the atomic factors.
    fn step(&self, u: usize, v: usize, val: f32, alpha: f32) {
        let f = self.config.f;
        let lambda = self.config.lambda;
        let x = &self.x_atomic;
        let theta = &self.theta_atomic;
        let mut err = val;
        for k in 0..f {
            err -= x.load(u, k) * theta.load(v, k);
        }
        for k in 0..f {
            let xk = x.load(u, k);
            let tk = theta.load(v, k);
            x.store(u, k, xk + alpha * (err * tk - lambda * xk));
            theta.store(v, k, tk + alpha * (err * xk - lambda * tk));
        }
    }

    /// Absorbs a batch of streamed rating mutations: applies one SGD step
    /// per rating (growing the user set on demand) and refreshes the
    /// snapshot rows that changed.  Returns the distinct user ids touched,
    /// sorted ascending — exactly the rows an online loop must republish.
    ///
    /// # Panics
    /// Panics if a rating references an item outside the trained catalog.
    pub fn absorb(&mut self, batch: &[Entry]) -> Vec<u32> {
        if batch.is_empty() {
            return Vec::new();
        }
        let n_items = self.r.n_cols() as usize;
        let max_user = batch.iter().map(|e| e.row).max().unwrap() as usize;
        self.ensure_users(max_user + 1);
        let alpha = self.alpha();
        let mut users: Vec<u32> = Vec::with_capacity(batch.len());
        let mut items: Vec<u32> = Vec::with_capacity(batch.len());
        for e in batch {
            assert!(
                (e.col as usize) < n_items,
                "streamed rating item id out of range"
            );
            self.step(e.row as usize, e.col as usize, e.val, alpha);
            users.push(e.row);
            items.push(e.col);
        }
        users.sort_unstable();
        users.dedup();
        items.sort_unstable();
        items.dedup();
        let f = self.config.f;
        for &u in &users {
            self.x_atomic
                .read_row_into(u as usize, self.x_snapshot.vector_mut(u as usize));
        }
        for &v in &items {
            self.theta_atomic
                .read_row_into(v as usize, self.theta_snapshot.vector_mut(v as usize));
        }
        debug_assert_eq!(self.x_snapshot.rank(), f);
        // Streamed ratings join the training set so later sweeps keep them.
        self.entries.extend_from_slice(batch);
        users
    }

    /// One lock-free parallel epoch over every retained rating.
    fn parallel_epoch(&mut self) {
        let alpha = self.alpha();
        let this = &*self;
        self.entries.par_iter().for_each(|e| {
            this.step(e.row as usize, e.col as usize, e.val, alpha);
        });
        self.epoch += 1;
        self.x_snapshot = self.x_atomic.to_factor_matrix();
        self.theta_snapshot = self.theta_atomic.to_factor_matrix();
    }
}

impl Engine for SgdEngine {
    fn name(&self) -> &'static str {
        "sgd"
    }

    fn train_sweep(&mut self) -> f64 {
        self.parallel_epoch();
        0.0
    }

    fn x(&self) -> &FactorMatrix {
        &self.x_snapshot
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta_snapshot
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert!(
            x.len() >= self.r.n_rows() as usize,
            "X has the wrong number of rows"
        );
        assert_eq!(
            theta.len(),
            self.r.n_cols() as usize,
            "Θ has the wrong number of rows"
        );
        assert_eq!(x.rank(), self.config.f, "X has the wrong rank");
        assert_eq!(theta.rank(), self.config.f, "Θ has the wrong rank");
        self.x_atomic = AtomicFactors::from_factor_matrix(&x);
        self.theta_atomic = AtomicFactors::from_factor_matrix(&theta);
        self.x_snapshot = x;
        self.theta_snapshot = theta;
    }

    fn attach_metrics(&mut self, metrics: Arc<TrainMetrics>) {
        self.metrics = Some(metrics);
    }

    fn metrics(&self) -> Option<&TrainMetrics> {
        self.metrics.as_deref()
    }

    fn train_rmse(&self) -> f64 {
        loss::rmse_csr(&self.x_snapshot, &self.theta_snapshot, &self.r)
    }
}

impl IncrementalEngine for SgdEngine {
    fn fold_in_lambda(&self) -> f32 {
        self.config.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::BaseAls;
    use crate::config::AlsConfig;
    use cumf_data::synth::SyntheticConfig;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 150,
            n: 80,
            nnz: 5000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    #[test]
    fn sgd_reduces_training_error() {
        let mut sgd = SgdReference::new(
            SgdConfig {
                f: 8,
                epochs: 15,
                ..Default::default()
            },
            ratings(),
        );
        let before = sgd.train_rmse();
        sgd.run();
        let after = sgd.train_rmse();
        assert!(
            after < before * 0.7,
            "SGD should make progress: {before} -> {after}"
        );
    }

    #[test]
    fn learning_rate_decays() {
        let mut sgd = SgdReference::new(
            SgdConfig {
                f: 4,
                epochs: 2,
                ..Default::default()
            },
            ratings(),
        );
        let a0 = sgd.epoch(0);
        let a5 = sgd.epoch(5);
        assert!(a5 < a0);
    }

    #[test]
    fn als_needs_fewer_iterations_than_sgd() {
        // §2.1/§6: ALS converges in fewer iterations than SGD — one ALS
        // iteration should beat several SGD epochs on training RMSE.
        let r = ratings();
        let mut als = BaseAls::new(
            AlsConfig {
                f: 8,
                iterations: 1,
                ..Default::default()
            },
            r.clone(),
        );
        let mut sgd = SgdReference::new(
            SgdConfig {
                f: 8,
                epochs: 3,
                ..Default::default()
            },
            r,
        );
        als.iterate();
        for e in 0..3 {
            sgd.epoch(e);
        }
        assert!(
            als.train_rmse() < sgd.train_rmse(),
            "1 ALS iteration ({}) should beat 3 SGD epochs ({})",
            als.train_rmse(),
            sgd.train_rmse()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let r = ratings();
        let mut a = SgdReference::new(
            SgdConfig {
                f: 4,
                epochs: 2,
                ..Default::default()
            },
            r.clone(),
        );
        let mut b = SgdReference::new(
            SgdConfig {
                f: 4,
                epochs: 2,
                ..Default::default()
            },
            r,
        );
        a.run();
        b.run();
        assert_eq!(a.x().max_abs_diff(b.x()), 0.0);
    }

    fn engine() -> SgdEngine {
        SgdEngine::new(
            SgdConfig {
                f: 8,
                ..Default::default()
            },
            ratings(),
        )
    }

    #[test]
    fn absorb_updates_touched_rows_and_reports_them() {
        let mut e = engine();
        let before_x = e.x().clone();
        let before_theta = e.theta().clone();
        let batch = vec![
            Entry {
                row: 3,
                col: 5,
                val: 4.0,
            },
            Entry {
                row: 1,
                col: 5,
                val: 2.0,
            },
            Entry {
                row: 3,
                col: 9,
                val: 5.0,
            },
        ];
        let touched = e.absorb(&batch);
        assert_eq!(touched, vec![1, 3]);
        for u in [1usize, 3] {
            assert_ne!(e.x().vector(u), before_x.vector(u), "user {u} must move");
        }
        assert_eq!(e.x().vector(0), before_x.vector(0), "untouched user moved");
        assert_ne!(e.theta().vector(5), before_theta.vector(5));
        assert_eq!(e.theta().vector(0), before_theta.vector(0));
    }

    #[test]
    fn absorb_grows_the_user_set_on_demand() {
        let mut e = engine();
        let trained_users = e.n_users();
        let new_user = trained_users as u32 + 7;
        let touched = e.absorb(&[Entry {
            row: new_user,
            col: 0,
            val: 5.0,
        }]);
        assert_eq!(touched, vec![new_user]);
        assert_eq!(e.n_users(), new_user as usize + 1);
        assert_eq!(e.x().len(), new_user as usize + 1);
        assert!(e
            .x()
            .vector(new_user as usize)
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "item id out of range")]
    fn absorb_rejects_items_outside_the_catalog() {
        let mut e = engine();
        let n = e.theta().len() as u32;
        e.absorb(&[Entry {
            row: 0,
            col: n,
            val: 1.0,
        }]);
    }

    #[test]
    fn absorbed_ratings_join_later_training_sweeps() {
        // A user absorbed from the stream keeps improving on subsequent
        // sweeps because the streamed ratings were retained.
        let mut e = engine();
        let n_users = e.n_users() as u32;
        let batch: Vec<Entry> = (0..6)
            .map(|k| Entry {
                row: n_users,
                col: k * 3,
                val: 4.0,
            })
            .collect();
        e.absorb(&batch);
        let err = |e: &SgdEngine| {
            let x = e.x().vector(n_users as usize);
            batch
                .iter()
                .map(|en| {
                    let d = en.val - dot(x, e.theta().vector(en.col as usize));
                    (d * d) as f64
                })
                .sum::<f64>()
        };
        let before = err(&e);
        for _ in 0..3 {
            e.train_sweep();
        }
        let after = err(&e);
        assert!(
            after < before,
            "streamed user must keep converging: {before} -> {after}"
        );
    }
}

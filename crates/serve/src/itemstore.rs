//! Segmented, optionally norm-ordered storage of the serving-side item
//! factors Θ.
//!
//! The paper's core trick is a blocked, memory-aware layout of the factor
//! matrices; this module applies it to the serving catalog.  An
//! [`ItemStore`] owns Θ as a sequence of block-aligned, `Arc`-shared
//! **segments**: one base slab plus a tail segment per item-appending delta.
//! Appending `a` items builds one new `a`-row segment — `O(a·f)` bytes — and
//! clones the `Arc` list; every existing segment (factors, norms, block
//! maxima) is shared untouched with the previous snapshot, making catalog
//! growth as cheap as the user side's copy-on-write blocks.
//!
//! Each segment covers a **contiguous global id range** (`start ..
//! start + len`), because appended items always take the next catalog ids.
//! Within a segment the stored row order is a layout choice
//! ([`ItemLayout`]):
//!
//! * [`ItemLayout::CatalogOrder`] — rows stored by catalog id (the PR 2–4
//!   layout).
//! * [`ItemLayout::NormDescending`] — rows sorted by `‖θ_v‖` descending.
//!   High-norm items cluster into the first blocks, so the top-k heap
//!   threshold rises early and Cauchy–Schwarz block pruning skips the long
//!   low-norm tail **systematically** instead of data-dependently (the
//!   layout the approximate-computing follow-up paper motivates).  A
//!   per-segment id remap (`stored row → global id`) restores catalog ids
//!   on result output, and the inverse map serves point lookups; results
//!   are bit-identical to catalog order.
//!
//! Sustained appends would otherwise grow the segment list without bound;
//! [`ItemStore::compact`] merges every tail back into one base segment
//! (re-deriving the layout), and the serving tier republishes the compacted
//! snapshot through the ordinary hot-swap path.

use crate::sync::Arc;
use cumf_linalg::topk::DEFAULT_ITEM_BLOCK;
use cumf_linalg::{block_max_norms, item_norms, EncodedSlab, FactorMatrix, Precision, SegmentView};

/// Stored row order of each [`ItemStore`] segment.
///
/// `NormDescending` is the default: it is bit-identical to `CatalogOrder`
/// under exact retrieval (results depend only on vectors and the total-order
/// tie-break, never on stored order) and is the precondition for
/// approximate early termination ([`cumf_linalg::ApproxPolicy`]) to fire
/// systematically rather than data-dependently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ItemLayout {
    /// Rows stored by catalog id — no remap, no reordering (the PR 2–4
    /// layout; still used by tests pinning layout invariance).
    CatalogOrder,
    /// Rows stored by item norm, descending (ties by catalog id ascending,
    /// so the layout is deterministic), with an id remap applied on result
    /// output.  Makes block threshold pruning systematic.
    #[default]
    NormDescending,
}

/// One immutable, block-aligned segment of the item catalog: a contiguous
/// global id range `[start, start + len)` stored as its own row-major slab
/// with precomputed norms and block maxima, plus the id remap when the
/// layout permutes rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemSegment {
    start: u32,
    /// Item factors in stored order.
    theta: FactorMatrix,
    /// `‖θ_v‖` per stored row.
    norms: Vec<f32>,
    /// Block maxima of `norms` at [`ItemSegment::default_block`]
    /// granularity.
    block_max: Vec<f32>,
    /// Stored row → global id (`None` = identity off `start`).
    ids: Option<Vec<u32>>,
    /// Global offset (`id - start`) → stored row; inverse of `ids`.
    pos: Option<Vec<u32>>,
    /// Storage precision of the scan operand.  `F32` means the scan reads
    /// `theta` directly and everything behaves exactly as before
    /// quantization existed.
    precision: Precision,
    /// Compressed copy of `theta` in stored order when
    /// `precision != F32`.  The blocked scan streams this; `theta` is
    /// retained as the exact f32 copy the rerank pass (and every point
    /// lookup and fold-in) reads.
    encoded: Option<EncodedSlab>,
}

impl ItemSegment {
    fn build_with_precision(
        theta: FactorMatrix,
        start: u32,
        layout: ItemLayout,
        precision: Precision,
    ) -> Self {
        let f = theta.rank().max(1);
        let norms = item_norms(theta.data(), f);
        let base = match layout {
            ItemLayout::CatalogOrder => {
                let block_max = block_max_norms(&norms, DEFAULT_ITEM_BLOCK.min(theta.len().max(1)));
                Self {
                    start,
                    theta,
                    norms,
                    block_max,
                    ids: None,
                    pos: None,
                    precision: Precision::F32,
                    encoded: None,
                }
            }
            ItemLayout::NormDescending => {
                let n = theta.len();
                let mut order: Vec<u32> = (0..n as u32).collect();
                order.sort_by(|&a, &b| {
                    norms[b as usize]
                        .total_cmp(&norms[a as usize])
                        .then(a.cmp(&b))
                });
                let rank = theta.rank();
                let mut data = Vec::with_capacity(n * rank);
                let mut sorted_norms = Vec::with_capacity(n);
                let mut pos = vec![0u32; n];
                for (row, &orig) in order.iter().enumerate() {
                    data.extend_from_slice(theta.vector(orig as usize));
                    sorted_norms.push(norms[orig as usize]);
                    pos[orig as usize] = row as u32;
                }
                let ids: Vec<u32> = order.iter().map(|&orig| start + orig).collect();
                let block_max = block_max_norms(&sorted_norms, DEFAULT_ITEM_BLOCK.min(n.max(1)));
                Self {
                    start,
                    theta: FactorMatrix::from_vec(n, rank, data),
                    norms: sorted_norms,
                    block_max,
                    ids: Some(ids),
                    pos: Some(pos),
                    precision: Precision::F32,
                    encoded: None,
                }
            }
        };
        base.encode_at(precision)
    }

    /// Attaches (or removes) the compressed scan slab.  The pruning tables
    /// must describe what the scan actually streams, so `norms` and
    /// `block_max` are recomputed from the **decoded** values; `theta`
    /// stays the exact copy.  At `F32` the segment is returned to its
    /// pre-quantization state bit-for-bit.
    fn encode_at(mut self, precision: Precision) -> Self {
        let f = self.theta.rank().max(1);
        if self.precision != Precision::F32 {
            // Rebuild the exact tables before (re-)encoding.
            self.norms = item_norms(self.theta.data(), f);
            self.block_max = block_max_norms(&self.norms, self.default_block());
            self.precision = Precision::F32;
            self.encoded = None;
        }
        if precision == Precision::F32 {
            return self;
        }
        if let Some(slab) =
            EncodedSlab::encode(self.theta.data(), f, self.default_block(), precision)
        {
            let decoded = slab.decode_all();
            self.norms = item_norms(&decoded, f);
            self.block_max = block_max_norms(&self.norms, self.default_block());
            self.encoded = Some(slab);
            self.precision = precision;
        }
        self
    }

    /// Re-encodes this segment at a different precision from its retained
    /// exact rows (identity when the precision already matches).
    pub fn reencode(&self, precision: Precision) -> ItemSegment {
        if precision == self.precision {
            return self.clone();
        }
        self.clone().encode_at(precision)
    }

    /// Storage precision of the scan operand.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The compressed scan slab (`None` at [`Precision::F32`]).
    pub fn encoded(&self) -> Option<&EncodedSlab> {
        self.encoded.as_ref()
    }

    /// First global item id covered by this segment.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Number of items in the segment.
    pub fn len(&self) -> usize {
        self.theta.len()
    }

    /// True when the segment holds no items.
    pub fn is_empty(&self) -> bool {
        self.theta.is_empty()
    }

    /// True when the stored order differs from catalog order.
    pub fn is_permuted(&self) -> bool {
        self.ids.is_some()
    }

    /// The stored-order factor slab.
    pub fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    /// Per-stored-row norms.
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Precomputed block maxima at [`ItemSegment::default_block`]
    /// granularity.
    pub fn block_max(&self) -> &[f32] {
        &self.block_max
    }

    /// Block size the precomputed [`ItemSegment::block_max`] is aligned to:
    /// [`DEFAULT_ITEM_BLOCK`] clamped to the segment size.
    pub fn default_block(&self) -> usize {
        DEFAULT_ITEM_BLOCK.min(self.len().max(1))
    }

    /// Global item id of stored row `row`.
    #[inline]
    pub fn global_id(&self, row: usize) -> u32 {
        match &self.ids {
            Some(ids) => ids[row],
            None => self.start + row as u32,
        }
    }

    /// Stored row holding global offset `offset` (`id - start`).
    #[inline]
    fn stored_row(&self, offset: usize) -> usize {
        match &self.pos {
            Some(pos) => pos[offset] as usize,
            None => offset,
        }
    }

    /// Factor vector of the item at global offset `offset` into this
    /// segment.
    pub fn vector_at(&self, offset: usize) -> &[f32] {
        self.theta.vector(self.stored_row(offset))
    }

    /// Norm of the item at global offset `offset` into this segment.
    pub fn norm_at(&self, offset: usize) -> f32 {
        self.norms[self.stored_row(offset)]
    }

    /// A scoring view of the whole segment at its default blocking.
    pub fn view(&self) -> SegmentView<'_> {
        self.view_with(self.default_block(), &self.block_max)
    }

    /// A scoring view at a caller-chosen blocking, with a matching
    /// `block_max` table (`block_max_norms(self.norms(), item_block)`).
    pub fn view_with<'a>(&'a self, item_block: usize, block_max: &'a [f32]) -> SegmentView<'a> {
        SegmentView {
            items: self.theta.data(),
            norms: &self.norms,
            block_max,
            item_block,
            first_id: self.start,
            ids: self.ids.as_deref(),
            pos: self.pos.as_deref(),
            encoded: self.encoded.as_ref(),
        }
    }
}

/// The serving-side item factors as block-aligned, `Arc`-shared segments.
///
/// Cloning a store clones the `Arc` list, not the factors; two snapshots
/// chained by an item-appending delta share every pre-existing segment
/// allocation.  See the module docs for the layout story.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemStore {
    f: usize,
    n_items: usize,
    layout: ItemLayout,
    /// Default precision newly built segments (appends, compaction) are
    /// encoded at.  Individual segments may override it
    /// ([`ItemStore::reencode_with`]).
    precision: Precision,
    segments: Vec<Arc<ItemSegment>>,
}

impl ItemStore {
    /// Builds a single-segment store over `theta` (rows in catalog order)
    /// with the given layout, at full precision.
    pub fn new(theta: FactorMatrix, layout: ItemLayout) -> Self {
        Self::new_with_precision(theta, layout, Precision::F32)
    }

    /// [`ItemStore::new`] with the scan slab stored at `precision`.  The
    /// exact f32 rows are always retained alongside — point lookups,
    /// [`ItemStore::to_matrix`], and fold-in stay exact; only the blocked
    /// scan reads compressed bytes.
    pub fn new_with_precision(
        theta: FactorMatrix,
        layout: ItemLayout,
        precision: Precision,
    ) -> Self {
        let f = theta.rank();
        let n_items = theta.len();
        let segments = vec![Arc::new(ItemSegment::build_with_precision(
            theta, 0, layout, precision,
        ))];
        Self {
            f,
            n_items,
            layout,
            precision,
            segments,
        }
    }

    /// Latent rank `f`.
    pub fn rank(&self) -> usize {
        self.f
    }

    /// Default precision for newly built segments.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Re-encodes every segment at `precision` and makes it the store
    /// default.  Segments already at the target precision are `Arc`-shared,
    /// not copied.  At `F32` this restores the exact pre-quantization
    /// store.
    pub fn reencode(&self, precision: Precision) -> ItemStore {
        let mut out = self.reencode_with(|_, _| precision);
        out.precision = precision;
        out
    }

    /// Per-segment precision overrides: `choose(i, segment)` picks each
    /// segment's target, so mixed catalogs (hot head segment at f32, cold
    /// tails at i8) are one call.  Unchanged segments stay `Arc`-shared;
    /// the store default is untouched.
    pub fn reencode_with(
        &self,
        mut choose: impl FnMut(usize, &ItemSegment) -> Precision,
    ) -> ItemStore {
        let segments = self
            .segments
            .iter()
            .enumerate()
            .map(|(i, seg)| {
                let target = choose(i, seg);
                if target == seg.precision() {
                    Arc::clone(seg)
                } else {
                    Arc::new(seg.reencode(target))
                }
            })
            .collect();
        Self {
            f: self.f,
            n_items: self.n_items,
            layout: self.layout,
            precision: self.precision,
            segments,
        }
    }

    /// Total items across all segments.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The stored row order of every segment.
    pub fn layout(&self) -> ItemLayout {
        self.layout
    }

    /// Number of segments (1 after a full build or [`ItemStore::compact`]).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segments, base first, tails in append order.
    pub fn segments(&self) -> &[Arc<ItemSegment>] {
        &self.segments
    }

    /// Appends `rows` as a new tail segment taking the next catalog ids,
    /// encoded at the store's default precision (the fold-in/append path
    /// re-encodes automatically — a quantized catalog never silently grows
    /// full-precision tails).  Returns the new store and the factor bytes
    /// physically copied — `rows.len() · f · 4` for the retained exact copy
    /// (`O(a·f)`; plus the encoded slab when the store is quantized): every
    /// existing segment is shared by `Arc`, never copied.
    ///
    /// # Panics
    /// Panics if `rows` has a different rank.
    pub fn append(&self, rows: &FactorMatrix) -> (ItemStore, usize) {
        assert_eq!(rows.rank(), self.f, "appended items have the wrong rank");
        let tail = ItemSegment::build_with_precision(
            rows.clone(),
            self.n_items as u32,
            self.layout,
            self.precision,
        );
        let bytes = rows.data().len() * 4
            + tail
                .encoded()
                .map_or(0, |slab| slab.scan_bytes(0, slab.rows()) as usize);
        let mut segments = self.segments.clone();
        segments.push(Arc::new(tail));
        (
            Self {
                f: self.f,
                n_items: self.n_items + rows.len(),
                layout: self.layout,
                precision: self.precision,
                segments,
            },
            bytes,
        )
    }

    /// Merges every segment back into one base segment, re-deriving the
    /// layout over the whole catalog and re-encoding at the store's default
    /// precision (per-segment overrides do not survive a compaction — the
    /// merged base is one slab).  Costs one `O(n·f)` materialization — the
    /// price an append-heavy store pays once per compaction instead of on
    /// every delta.  Retrieval against the compacted store is bit-identical
    /// when every segment already carried the default precision.
    pub fn compact(&self) -> ItemStore {
        ItemStore::new_with_precision(self.to_matrix(), self.layout, self.precision)
    }

    /// Materializes the catalog in global id order — the contiguous Θ a
    /// fold-in solve or an external consumer wants.  `O(n·f)`.
    pub fn to_matrix(&self) -> FactorMatrix {
        let f = self.f;
        let mut data = vec![0.0f32; self.n_items * f];
        for seg in &self.segments {
            for row in 0..seg.len() {
                let g = seg.global_id(row) as usize;
                data[g * f..(g + 1) * f].copy_from_slice(seg.theta.vector(row));
            }
        }
        FactorMatrix::from_vec(self.n_items, f, data)
    }

    /// The segment covering global item id `v`.
    ///
    /// # Panics
    /// Panics if `v >= n_items()`.
    fn segment_for(&self, v: usize) -> &ItemSegment {
        assert!(v < self.n_items, "item {v} out of range");
        let i = self
            .segments
            .partition_point(|s| (s.start as usize) <= v)
            .saturating_sub(1);
        &self.segments[i]
    }

    /// Factor vector of catalog item `v` (id-remap applied).
    ///
    /// # Panics
    /// Panics if `v >= n_items()`.
    pub fn vector(&self, v: usize) -> &[f32] {
        let seg = self.segment_for(v);
        seg.vector_at(v - seg.start as usize)
    }

    /// Norm of catalog item `v`.
    ///
    /// # Panics
    /// Panics if `v >= n_items()`.
    pub fn norm(&self, v: usize) -> f32 {
        let seg = self.segment_for(v);
        seg.norm_at(v - seg.start as usize)
    }

    /// Scoring views of every segment at their default blocking.
    pub fn views(&self) -> Vec<SegmentView<'_>> {
        self.segments.iter().map(|s| s.view()).collect()
    }

    /// True when segment `i` is physically the same allocation in both
    /// stores — the structural-sharing invariant the tests pin.
    #[cfg(test)]
    pub(crate) fn shares_segment_with(&self, other: &ItemStore, i: usize) -> bool {
        Arc::ptr_eq(&self.segments[i], &other.segments[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta(n: usize, f: usize, seed: u64) -> FactorMatrix {
        FactorMatrix::random(n, f, 1.0, seed)
    }

    #[test]
    fn catalog_order_store_round_trips_vectors_and_norms() {
        let t = theta(37, 5, 1);
        let store = ItemStore::new(t.clone(), ItemLayout::CatalogOrder);
        assert_eq!(store.n_items(), 37);
        assert_eq!(store.segment_count(), 1);
        for v in 0..37 {
            assert_eq!(store.vector(v), t.vector(v), "item {v}");
            let expect = cumf_linalg::blas::norm_sq(t.vector(v)).sqrt();
            assert_eq!(store.norm(v), expect);
        }
        assert_eq!(store.to_matrix(), t);
    }

    #[test]
    fn norm_descending_store_permutes_rows_but_remaps_ids() {
        let t = theta(100, 6, 2);
        let store = ItemStore::new(t.clone(), ItemLayout::NormDescending);
        let seg = &store.segments()[0];
        assert!(seg.is_permuted());
        // Stored norms are non-increasing.
        assert!(seg.norms().windows(2).all(|w| w[0] >= w[1]));
        // Global lookups are id-remapped back to catalog order.
        for v in 0..100 {
            assert_eq!(store.vector(v), t.vector(v), "item {v}");
        }
        assert_eq!(store.to_matrix(), t);
        // Stored rows carry their true global ids.
        for row in 0..seg.len() {
            let g = seg.global_id(row) as usize;
            assert_eq!(seg.theta().vector(row), t.vector(g));
        }
    }

    #[test]
    fn norm_permutation_is_deterministic_under_ties() {
        // All-equal norms: the permutation must fall back to id order.
        let t = FactorMatrix::from_vec(
            6,
            2,
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0],
        );
        let store = ItemStore::new(t, ItemLayout::NormDescending);
        let seg = &store.segments()[0];
        let ids: Vec<u32> = (0..seg.len()).map(|r| seg.global_id(r)).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn append_pushes_a_tail_segment_and_shares_the_base() {
        for layout in [ItemLayout::CatalogOrder, ItemLayout::NormDescending] {
            let base_theta = theta(90, 4, 3);
            let store = ItemStore::new(base_theta.clone(), layout);
            let tail = theta(15, 4, 4);
            let (grown, bytes) = store.append(&tail);
            assert_eq!(bytes, 15 * 4 * 4, "O(a·f) bytes for {layout:?}");
            assert_eq!(grown.n_items(), 105);
            assert_eq!(grown.segment_count(), 2);
            assert!(grown.shares_segment_with(&store, 0), "base Arc-shared");
            for v in 0..90 {
                assert_eq!(grown.vector(v), base_theta.vector(v));
            }
            for i in 0..15 {
                assert_eq!(grown.vector(90 + i), tail.vector(i), "{layout:?}");
            }
            // A second append shares both existing segments.
            let (grown2, _) = grown.append(&theta(7, 4, 5));
            assert_eq!(grown2.segment_count(), 3);
            assert!(grown2.shares_segment_with(&grown, 0));
            assert!(grown2.shares_segment_with(&grown, 1));
        }
    }

    #[test]
    fn compact_merges_tails_into_one_identical_base() {
        for layout in [ItemLayout::CatalogOrder, ItemLayout::NormDescending] {
            let store = ItemStore::new(theta(60, 5, 6), layout);
            let (store, _) = store.append(&theta(20, 5, 7));
            let (store, _) = store.append(&theta(3, 5, 8));
            assert_eq!(store.segment_count(), 3);
            let compacted = store.compact();
            assert_eq!(compacted.segment_count(), 1);
            assert_eq!(compacted.n_items(), store.n_items());
            assert_eq!(compacted.to_matrix(), store.to_matrix(), "{layout:?}");
            for v in 0..store.n_items() {
                assert_eq!(compacted.vector(v), store.vector(v));
                assert_eq!(compacted.norm(v), store.norm(v));
            }
        }
    }

    #[test]
    fn views_cover_every_item_exactly_once() {
        let store = ItemStore::new(theta(50, 4, 9), ItemLayout::NormDescending);
        let (store, _) = store.append(&theta(11, 4, 10));
        let views = store.views();
        assert_eq!(views.len(), 2);
        let mut seen: Vec<u32> = views
            .iter()
            .flat_map(|v| (0..v.n_items()).map(move |r| v.global_id(r)))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..61u32).collect::<Vec<_>>());
        for v in &views {
            v.validate(4);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vector_panics() {
        ItemStore::new(theta(3, 2, 11), ItemLayout::CatalogOrder).vector(3);
    }

    #[test]
    #[should_panic(expected = "wrong rank")]
    fn append_rejects_rank_mismatch() {
        ItemStore::new(theta(3, 2, 12), ItemLayout::CatalogOrder).append(&theta(1, 3, 13));
    }

    #[test]
    fn quantized_store_retains_exact_rows_and_encodes_the_scan_slab() {
        for precision in [Precision::F16, Precision::I8] {
            let t = theta(200, 8, 21);
            let store =
                ItemStore::new_with_precision(t.clone(), ItemLayout::NormDescending, precision);
            assert_eq!(store.precision(), precision);
            let seg = &store.segments()[0];
            assert_eq!(seg.precision(), precision);
            let slab = seg.encoded().expect("scan slab present");
            assert_eq!(slab.rows(), 200);
            // Point lookups and materialization stay exact: theta is the
            // retained f32 copy, only the scan slab is compressed.
            for v in 0..200 {
                assert_eq!(store.vector(v), t.vector(v), "{precision}: item {v}");
            }
            assert_eq!(store.to_matrix(), t);
            // The pruning tables describe the decoded values the scan
            // actually streams.
            let decoded = slab.decode_all();
            for (row, &n) in seg.norms().iter().enumerate() {
                let expect = cumf_linalg::blas::norm_sq(&decoded[row * 8..(row + 1) * 8]).sqrt();
                assert_eq!(n, expect, "{precision}: row {row}");
            }
            // Round-tripping back to f32 restores the exact store.
            let restored = store.reencode(Precision::F32);
            assert_eq!(
                restored,
                ItemStore::new(t.clone(), ItemLayout::NormDescending)
            );
        }
    }

    #[test]
    fn quantized_append_and_compact_reencode_tails() {
        let store = ItemStore::new_with_precision(
            theta(90, 4, 3),
            ItemLayout::NormDescending,
            Precision::I8,
        );
        let (grown, _) = store.append(&theta(15, 4, 4));
        assert_eq!(grown.segments()[1].precision(), Precision::I8);
        assert!(grown.segments()[1].encoded().is_some(), "tail re-encoded");
        assert!(grown.shares_segment_with(&store, 0), "base Arc-shared");
        let compacted = grown.compact();
        assert_eq!(compacted.segment_count(), 1);
        assert_eq!(compacted.segments()[0].precision(), Precision::I8);
        assert_eq!(compacted.to_matrix(), grown.to_matrix());
    }

    #[test]
    fn mixed_precision_overrides_share_unchanged_segments() {
        let store = ItemStore::new(theta(60, 5, 6), ItemLayout::NormDescending);
        let (store, _) = store.append(&theta(20, 5, 7));
        let mixed = store.reencode_with(|i, _| {
            if i == 0 {
                Precision::F32
            } else {
                Precision::I8
            }
        });
        assert!(mixed.shares_segment_with(&store, 0), "hot head untouched");
        assert_eq!(mixed.segments()[1].precision(), Precision::I8);
        assert_eq!(mixed.precision(), Precision::F32, "store default unchanged");
        for v in 0..80 {
            assert_eq!(
                mixed.vector(v),
                store.vector(v),
                "exact lookups survive the mix"
            );
        }
    }

    #[test]
    fn empty_catalog_is_representable() {
        let store = ItemStore::new(FactorMatrix::zeros(0, 4), ItemLayout::NormDescending);
        assert_eq!(store.n_items(), 0);
        assert_eq!(store.views().len(), 1);
        assert!(store.segments()[0].is_empty());
        let (grown, bytes) = store.append(&theta(5, 4, 14));
        assert_eq!(grown.n_items(), 5);
        assert_eq!(bytes, 5 * 4 * 4);
    }
}

//! Property-based tests of the GPU performance model: occupancy monotonicity,
//! timing monotonicity, transfer-time bounds and allocator accounting.

use cumf_gpu_sim::{
    DeviceAllocator, DeviceSpec, Endpoint, KernelTraffic, Occupancy, PcieTopology, TimingModel,
    Transfer,
};
use proptest::prelude::*;

fn titan() -> DeviceSpec {
    DeviceSpec::titan_x()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn occupancy_is_monotone_in_resource_usage(
        threads in 32u32..512,
        regs in 16u32..128,
        shared_kb in 0u32..48,
    ) {
        let spec = titan();
        let base = Occupancy::compute(&spec, threads, regs, shared_kb * 1024);
        let more_regs = Occupancy::compute(&spec, threads, regs + 32, shared_kb * 1024);
        let more_shared = Occupancy::compute(&spec, threads, regs, (shared_kb + 8) * 1024);
        prop_assert!(more_regs.blocks_per_sm <= base.blocks_per_sm);
        prop_assert!(more_shared.blocks_per_sm <= base.blocks_per_sm);
        prop_assert!(base.occupancy >= 0.0 && base.occupancy <= 1.0);
        prop_assert_eq!(base.active_threads_per_sm, base.blocks_per_sm * threads);
    }

    #[test]
    fn kernel_time_is_monotone_in_traffic(
        flops in 1e6f64..1e12,
        bytes in 1e3f64..1e10,
        scale in 1.1f64..4.0,
    ) {
        let spec = titan();
        let model = TimingModel::default();
        let occ = Occupancy::compute(&spec, 256, 32, 0);
        let t = KernelTraffic { flops, global_read_bytes: bytes, ..KernelTraffic::new() };
        let bigger = t.scale(scale);
        let t1 = model.kernel_time(&spec, &t, &occ, false).total_s;
        let t2 = model.kernel_time(&spec, &bigger, &occ, false).total_s;
        prop_assert!(t2 >= t1, "scaling traffic by {scale} must not speed the kernel up");
        prop_assert!(t1 > 0.0 && t1.is_finite());
    }

    #[test]
    fn texture_hits_never_slow_a_kernel_down(
        bytes in 1e6f64..1e10,
        hit_rate in 0.0f64..1.0,
    ) {
        let spec = titan();
        let model = TimingModel::default();
        let occ = Occupancy::compute(&spec, 256, 32, 0);
        let uncached = KernelTraffic { global_read_bytes: bytes, ..KernelTraffic::new() };
        let cached = KernelTraffic {
            texture_read_bytes: bytes,
            texture_hit_rate: hit_rate,
            ..KernelTraffic::new()
        };
        let t_uncached = model.kernel_time(&spec, &uncached, &occ, true).total_s;
        let t_cached = model.kernel_time(&spec, &cached, &occ, true).total_s;
        prop_assert!(t_cached <= t_uncached * 1.001);
    }

    #[test]
    fn concurrent_transfers_bounded_by_serial_sum_and_slowest_single(
        n_transfers in 1usize..8,
        bytes in 1e6f64..1e9,
        n_gpus in 2usize..5,
    ) {
        let topo = PcieTopology::dual_socket(n_gpus.max(2));
        let transfers: Vec<Transfer> = (0..n_transfers)
            .map(|i| {
                Transfer::new(
                    Endpoint::Gpu(i % n_gpus),
                    Endpoint::Gpu((i + 1) % n_gpus),
                    bytes * (1.0 + i as f64 * 0.1),
                )
            })
            .collect();
        let concurrent = topo.concurrent_transfer_time(&transfers);
        let singles: Vec<f64> = transfers.iter().map(|t| topo.transfer_time(t)).collect();
        let slowest = singles.iter().cloned().fold(0.0f64, f64::max);
        let serial: f64 = singles.iter().sum();
        prop_assert!(concurrent + 1e-12 >= slowest - topo.latency_s * n_transfers as f64);
        prop_assert!(concurrent <= serial + 1e-9, "concurrency cannot be slower than serial");
    }

    #[test]
    fn merge_preserves_totals(
        flops_a in 0.0f64..1e9, flops_b in 0.0f64..1e9,
        ga in 0.0f64..1e9, gb in 0.0f64..1e9,
        ta in 0.0f64..1e9, tb in 0.0f64..1e9,
        ha in 0.0f64..1.0, hb in 0.0f64..1.0,
    ) {
        let a = KernelTraffic { flops: flops_a, global_read_bytes: ga, texture_read_bytes: ta, texture_hit_rate: ha, ..KernelTraffic::new() };
        let b = KernelTraffic { flops: flops_b, global_read_bytes: gb, texture_read_bytes: tb, texture_hit_rate: hb, ..KernelTraffic::new() };
        let m = a.merge(&b);
        prop_assert!((m.flops - (flops_a + flops_b)).abs() < 1e-6);
        prop_assert!((m.texture_hit_bytes() - (a.texture_hit_bytes() + b.texture_hit_bytes())).abs() < 1e-3);
        prop_assert!(m.texture_hit_rate >= 0.0 && m.texture_hit_rate <= 1.0);
    }

    #[test]
    fn allocator_accounting_is_exact(sizes in proptest::collection::vec(1u64..1_000_000, 1..30)) {
        let total: u64 = sizes.iter().sum();
        let mut alloc = DeviceAllocator::new(total);
        let ids: Vec<_> = sizes
            .iter()
            .map(|&s| alloc.alloc("block", s).expect("fits by construction"))
            .collect();
        prop_assert_eq!(alloc.used(), total);
        prop_assert_eq!(alloc.available(), 0);
        prop_assert!(alloc.alloc("extra", 1).is_err());
        for id in ids {
            prop_assert!(alloc.free(id));
        }
        prop_assert_eq!(alloc.used(), 0);
        prop_assert_eq!(alloc.peak(), total);
    }
}

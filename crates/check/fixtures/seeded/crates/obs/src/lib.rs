//! Seeded-fixture obs crate: unjustified orderings and a facade bypass.
use std::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    hits: AtomicU64,
    guard: Mutex<u64>,
}

impl Counter {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn read(&self) -> u64 {
        self.hits.load(Ordering::Acquire)
    }

    pub fn locked(&self) -> u64 {
        *self.guard.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_test_mod_is_exempt() {
        let c = Counter { hits: AtomicU64::new(0), guard: Mutex::new(0) };
        c.hits.fetch_add(1, Ordering::Relaxed); // IN_TEST_MOD
        let _ = c.hits.load(Ordering::SeqCst); // IN_TEST_MOD
        let _ = std::sync::Arc::new(()); // IN_TEST_MOD
    }
}

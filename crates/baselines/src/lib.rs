//! CPU baseline matrix-factorization algorithms.
//!
//! The cuMF paper compares against a family of CPU systems.  This crate
//! implements the *algorithms* those systems run, as real shared-memory
//! multi-threaded Rust, so that their convergence behaviour (RMSE per
//! iteration/epoch) in Figures 6 and 10 is genuine rather than copied:
//!
//! * [`libmf`] — libMF-style blocked SGD (DSGD block scheduling across
//!   threads with conflict-free rotations).
//! * [`hogwild`] — HOGWILD!-style lock-free SGD (atomic relaxed updates).
//! * [`nomad`] — NOMAD-style asynchronous SGD where item columns circulate
//!   between workers as tokens.
//! * [`ccd`] — CCD++ cyclic coordinate descent with a maintained residual.
//! * [`pals`] — PALS: model-parallel ALS with full `Θ` replication.
//! * [`spark_als`] — SparkALS-style ALS with per-partition partial
//!   replication of `Θ` (and its communication-volume accounting).
//!
//! Cluster-scale *wall-clock* for these systems comes from `cumf-cluster`'s
//! cost models; this crate is about numerics on (scaled-down) data.

#![forbid(unsafe_code)]
pub mod als_util;
pub mod ccd;
pub mod hogwild;
pub mod libmf;
pub mod nomad;
pub mod pals;
pub mod spark_als;

pub use cumf_core::Engine;

/// Compatibility alias for the pre-unification baseline interface.
///
/// Every baseline now implements [`cumf_core::Engine`] directly, so the
/// benchmark harness drives the baselines and the cuMF engines through one
/// trait.  `MfSolver` survives only so downstream code keeps compiling: it is
/// a blanket extension of `Engine` whose sole method, [`MfSolver::iterate`],
/// forwards to [`Engine::train_sweep`].
#[deprecated(
    since = "0.9.0",
    note = "drive solvers through cumf_core::Engine; MfSolver is a compatibility alias"
)]
pub trait MfSolver: Engine {
    /// Runs one iteration (ALS) or one epoch (SGD/CCD).
    fn iterate(&mut self) {
        self.train_sweep();
    }
}

#[allow(deprecated)]
impl<T: Engine + ?Sized> MfSolver for T {}

pub use ccd::CcdPlusPlus;
pub use hogwild::HogwildSgd;
pub use libmf::LibMfSgd;
pub use nomad::NomadSgd;
pub use pals::Pals;
pub use spark_als::SparkAlsStyle;

//! Machine-readable rendering of metric sets.
//!
//! The exporter is a deliberately dumb builder: callers push named
//! counters, gauges, and [`HistogramSnapshot`]s, then render the whole set
//! as **Prometheus text exposition** (counters/gauges plus summary-style
//! quantiles) or as a **flat JSON object** whose keys are stable enough to
//! assert in CI — a histogram `foo` expands to `foo_count`, `foo_sum_ns`,
//! `foo_mean_ns`, `foo_p50_ns`, `foo_p90_ns`, `foo_p99_ns`, `foo_max_ns`.
//!
//! Both renderers are allocation-light and dependency-free (no serde in
//! this workspace); JSON numbers are emitted from finite values only, so
//! the output always parses.

use crate::histogram::HistogramSnapshot;

/// Quantiles every exported histogram reports.
pub const EXPORT_QUANTILES: [(f64, &str); 3] = [(0.5, "p50"), (0.9, "p90"), (0.99, "p99")];

/// One exported metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level.
    Gauge(f64),
    /// A latency distribution.
    Histogram(HistogramSnapshot),
}

#[derive(Debug, Clone)]
struct Metric {
    name: String,
    help: String,
    value: MetricValue,
}

/// A buildable, renderable set of metrics.
#[derive(Debug, Clone, Default)]
pub struct Exporter {
    metrics: Vec<Metric>,
}

impl Exporter {
    /// An empty exporter.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, name: &str, help: &str, value: MetricValue) -> &mut Self {
        debug_assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "metric names must be [A-Za-z0-9_]: {name}"
        );
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value,
        });
        self
    }

    /// Adds a counter.
    pub fn counter(&mut self, name: &str, help: &str, v: u64) -> &mut Self {
        self.push(name, help, MetricValue::Counter(v))
    }

    /// Adds a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, v: f64) -> &mut Self {
        self.push(name, help, MetricValue::Gauge(v))
    }

    /// Adds a histogram.
    pub fn histogram(&mut self, name: &str, help: &str, snap: HistogramSnapshot) -> &mut Self {
        self.push(name, help, MetricValue::Histogram(snap))
    }

    /// Renders Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {} counter\n{} {}\n", m.name, m.name, v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "# TYPE {} gauge\n{} {}\n",
                        m.name,
                        m.name,
                        finite(*v)
                    ));
                }
                MetricValue::Histogram(s) => {
                    out.push_str(&format!("# TYPE {} summary\n", m.name));
                    for (q, _) in EXPORT_QUANTILES {
                        out.push_str(&format!(
                            "{}{{quantile=\"{}\"}} {}\n",
                            m.name,
                            q,
                            s.quantile(q)
                        ));
                    }
                    out.push_str(&format!("{}_sum {}\n", m.name, s.sum_ns()));
                    out.push_str(&format!("{}_count {}\n", m.name, s.count()));
                    out.push_str(&format!("{}_max {}\n", m.name, s.max_ns()));
                }
            }
        }
        out
    }

    /// Renders one flat JSON object.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<String> = Vec::new();
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => fields.push(format!("\"{}\":{}", m.name, v)),
                MetricValue::Gauge(v) => fields.push(format!("\"{}\":{}", m.name, finite(*v))),
                MetricValue::Histogram(s) => {
                    fields.push(format!("\"{}_count\":{}", m.name, s.count()));
                    fields.push(format!("\"{}_sum_ns\":{}", m.name, s.sum_ns()));
                    fields.push(format!("\"{}_mean_ns\":{}", m.name, finite(s.mean_ns())));
                    for (q, label) in EXPORT_QUANTILES {
                        fields.push(format!("\"{}_{}_ns\":{}", m.name, label, s.quantile(q)));
                    }
                    fields.push(format!("\"{}_max_ns\":{}", m.name, s.max_ns()));
                }
            }
        }
        format!("{{{}}}", fields.join(","))
    }
}

/// JSON/Prometheus-safe float rendering: NaN/∞ become 0 so the document
/// always parses.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample_hist() -> HistogramSnapshot {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 4000] {
            h.record_ns(v);
        }
        h.snapshot()
    }

    #[test]
    fn prometheus_renders_all_kinds() {
        let mut e = Exporter::new();
        e.counter("serve_requests", "requests accepted", 42)
            .gauge("serve_cache_hit_rate", "hit fraction", 0.75)
            .histogram("serve_stage_score", "score stage latency", sample_hist());
        let text = e.to_prometheus();
        assert!(text.contains("# TYPE serve_requests counter"));
        assert!(text.contains("serve_requests 42"));
        assert!(text.contains("serve_cache_hit_rate 0.75"));
        assert!(text.contains("serve_stage_score{quantile=\"0.5\"}"));
        assert!(text.contains("serve_stage_score_count 4"));
        assert!(text.contains("serve_stage_score_max 4000"));
    }

    #[test]
    fn json_is_flat_and_parseable_shaped() {
        let mut e = Exporter::new();
        e.counter("requests", "r", 7)
            .gauge("rate", "g", f64::NAN)
            .histogram("lat", "h", sample_hist());
        let json = e.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests\":7"));
        assert!(json.contains("\"rate\":0"), "NaN must render finite");
        assert!(json.contains("\"lat_count\":4"));
        assert!(json.contains("\"lat_p50_ns\":"));
        assert!(json.contains("\"lat_p99_ns\":"));
        assert!(json.contains("\"lat_max_ns\":4000"));
        // p99 >= p50 — the invariant the CI gate asserts on the real file.
        let grab = |key: &str| -> u64 {
            let at = json.find(key).unwrap() + key.len();
            json[at..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap()
        };
        assert!(grab("\"lat_p99_ns\":") >= grab("\"lat_p50_ns\":"));
    }

    #[test]
    fn empty_exporter_renders_empty_documents() {
        let e = Exporter::new();
        assert_eq!(e.to_json(), "{}");
        assert_eq!(e.to_prometheus(), "");
    }
}

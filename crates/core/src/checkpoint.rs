//! Fault-tolerance checkpointing (§4.4 of the paper).
//!
//! "During ALS execution we asynchronously checkpoint X and Θ generated from
//! the latest iteration, into a connected parallel file system.  When the
//! machine fails, the latest X or Θ (whichever is more recent) is used to
//! restart ALS."
//!
//! The format is a small self-describing binary file (magic, version,
//! iteration, shapes, little-endian `f32` payloads) — no external
//! serialization crates needed.
//!
//! Between full checkpoints, incremental **fold-ins** (see
//! [`crate::foldin`]) are journaled as [`CheckpointDelta`] records: changed
//! user rows plus optional appended user/item rows, chained onto the full
//! checkpoint they were applied after.  A delta file is `O(u·f)` on disk —
//! the whole point of the incremental path — and
//! [`CheckpointManager::load_latest_with_deltas`] replays the chain on
//! restore, so a crash after a fold-in loses nothing even though no full
//! checkpoint was rewritten.

use cumf_linalg::FactorMatrix;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

const MAGIC: &[u8; 8] = b"CUMFCKP1";
const DELTA_MAGIC: &[u8; 8] = b"CUMFDLT1";

/// A checkpoint of the factor matrices after a given iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Iteration number the factors were produced by (1-based).
    pub iteration: u64,
    /// User factors `X`.
    pub x: FactorMatrix,
    /// Item factors `Θ`.
    pub theta: FactorMatrix,
}

/// An incremental update journaled between full checkpoints: the durable
/// record of one fold-in, replayable on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointDelta {
    /// Iteration of the full checkpoint this delta chains from.
    pub base_iteration: u64,
    /// 1-based position in the delta chain after that checkpoint.
    pub seq: u64,
    /// Users whose factor rows changed (parallel to `changed_rows`).
    pub changed_ids: Vec<u32>,
    /// One replacement row per changed user.
    pub changed_rows: FactorMatrix,
    /// Brand-new users appended after the base checkpoint's rows.
    pub appended_users: Option<FactorMatrix>,
    /// New catalog items appended after the base checkpoint's rows.
    pub appended_items: Option<FactorMatrix>,
}

impl CheckpointDelta {
    /// Applies this delta to a restored checkpoint in place.
    ///
    /// # Panics
    /// Panics if the delta does not chain from `checkpoint`'s iteration,
    /// a changed id is out of range, or ranks disagree.
    pub fn apply_to(&self, checkpoint: &mut Checkpoint) {
        assert_eq!(
            self.base_iteration, checkpoint.iteration,
            "delta chains from a different checkpoint"
        );
        assert_eq!(
            self.changed_ids.len(),
            self.changed_rows.len(),
            "changed ids and rows disagree"
        );
        let f = checkpoint.x.rank();
        for (i, &user) in self.changed_ids.iter().enumerate() {
            assert_eq!(self.changed_rows.rank(), f, "changed row rank mismatch");
            checkpoint
                .x
                .vector_mut(user as usize)
                .copy_from_slice(self.changed_rows.vector(i));
        }
        if let Some(app) = &self.appended_users {
            checkpoint.x.append_rows(app);
        }
        if let Some(app) = &self.appended_items {
            checkpoint.theta.append_rows(app);
        }
    }
}

/// Writes and restores checkpoints in a directory.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
}

impl CheckpointManager {
    /// Creates a manager rooted at `dir` (the directory is created if
    /// missing).
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory checkpoints are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, iteration: u64) -> PathBuf {
        self.dir.join(format!("checkpoint_{iteration:08}.cumf"))
    }

    /// Saves a checkpoint synchronously.  The file is written to a temporary
    /// name and atomically renamed, so a crash mid-write never corrupts the
    /// latest checkpoint.
    pub fn save(&self, checkpoint: &Checkpoint) -> io::Result<PathBuf> {
        let final_path = self.path_for(checkpoint.iteration);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp_path)?);
            w.write_all(MAGIC)?;
            w.write_all(&checkpoint.iteration.to_le_bytes())?;
            write_factor(&mut w, &checkpoint.x)?;
            write_factor(&mut w, &checkpoint.theta)?;
            w.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(final_path)
    }

    /// Saves a checkpoint on a background thread (the asynchronous mode the
    /// paper describes); join the handle to observe errors.
    pub fn save_async(&self, checkpoint: Checkpoint) -> JoinHandle<io::Result<PathBuf>> {
        let manager = self.clone();
        std::thread::spawn(move || manager.save(&checkpoint))
    }

    /// Loads the checkpoint with the highest iteration number, if any.
    pub fn load_latest(&self) -> io::Result<Option<Checkpoint>> {
        let mut best: Option<(u64, PathBuf)> = None;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(iter_str) = name
                .strip_prefix("checkpoint_")
                .and_then(|s| s.strip_suffix(".cumf"))
            {
                if let Ok(iter) = iter_str.parse::<u64>() {
                    if best.as_ref().map(|(b, _)| iter > *b).unwrap_or(true) {
                        best = Some((iter, entry.path()));
                    }
                }
            }
        }
        match best {
            None => Ok(None),
            Some((_, path)) => Ok(Some(Self::load(&path)?)),
        }
    }

    /// Loads a specific checkpoint file.
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a cuMF checkpoint",
            ));
        }
        let iteration = read_u64(&mut r)?;
        let x = read_factor(&mut r)?;
        let theta = read_factor(&mut r)?;
        Ok(Checkpoint {
            iteration,
            x,
            theta,
        })
    }

    fn delta_path_for(&self, base_iteration: u64, seq: u64) -> PathBuf {
        self.dir
            .join(format!("delta_{base_iteration:08}_{seq:04}.cumfd"))
    }

    /// Journals a fold-in delta next to the full checkpoints (same
    /// write-then-rename atomicity).  The file holds only the changed and
    /// appended rows — `O(u·f)` bytes, not a full factor copy.
    pub fn save_delta(&self, delta: &CheckpointDelta) -> io::Result<PathBuf> {
        assert_eq!(
            delta.changed_ids.len(),
            delta.changed_rows.len(),
            "changed ids and rows disagree"
        );
        let final_path = self.delta_path_for(delta.base_iteration, delta.seq);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp_path)?);
            w.write_all(DELTA_MAGIC)?;
            w.write_all(&delta.base_iteration.to_le_bytes())?;
            w.write_all(&delta.seq.to_le_bytes())?;
            w.write_all(&(delta.changed_ids.len() as u64).to_le_bytes())?;
            for &id in &delta.changed_ids {
                w.write_all(&id.to_le_bytes())?;
            }
            write_factor(&mut w, &delta.changed_rows)?;
            for optional in [&delta.appended_users, &delta.appended_items] {
                match optional {
                    Some(m) => {
                        w.write_all(&[1u8])?;
                        write_factor(&mut w, m)?;
                    }
                    None => w.write_all(&[0u8])?,
                }
            }
            w.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(final_path)
    }

    /// Loads one delta record.
    pub fn load_delta(path: &Path) -> io::Result<CheckpointDelta> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != DELTA_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a cuMF checkpoint delta",
            ));
        }
        let base_iteration = read_u64(&mut r)?;
        let seq = read_u64(&mut r)?;
        let n_changed = read_u64(&mut r)? as usize;
        let mut changed_ids = Vec::with_capacity(n_changed);
        for _ in 0..n_changed {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            changed_ids.push(u32::from_le_bytes(buf));
        }
        let changed_rows = read_factor(&mut r)?;
        let mut optionals = [None, None];
        for slot in &mut optionals {
            let mut flag = [0u8; 1];
            r.read_exact(&mut flag)?;
            if flag[0] == 1 {
                *slot = Some(read_factor(&mut r)?);
            }
        }
        let [appended_users, appended_items] = optionals;
        Ok(CheckpointDelta {
            base_iteration,
            seq,
            changed_ids,
            changed_rows,
            appended_users,
            appended_items,
        })
    }

    /// Restores the latest full checkpoint **with its delta chain
    /// replayed**: every `delta_<iteration>_<seq>` record chained onto the
    /// latest checkpoint is applied in sequence order.  Returns the
    /// reconstructed checkpoint and the number of deltas replayed.
    pub fn load_latest_with_deltas(&self) -> io::Result<Option<(Checkpoint, usize)>> {
        let Some(mut checkpoint) = self.load_latest()? else {
            return Ok(None);
        };
        let prefix = format!("delta_{:08}_", checkpoint.iteration);
        let mut chain: Vec<(u64, PathBuf)> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy().to_string();
                name.strip_prefix(&prefix)
                    .and_then(|s| s.strip_suffix(".cumfd"))
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(|seq| (seq, e.path()))
            })
            .collect();
        chain.sort_by_key(|(seq, _)| *seq);
        let replayed = chain.len();
        for (_, path) in chain {
            Self::load_delta(&path)?.apply_to(&mut checkpoint);
        }
        Ok(Some((checkpoint, replayed)))
    }

    /// Deletes every checkpoint older than the latest `keep` ones, along
    /// with each pruned checkpoint's delta journal — a delta chained onto a
    /// deleted base can never be replayed, so keeping it would only grow
    /// the directory without bound.  Returns the number of full checkpoints
    /// removed.
    pub fn prune(&self, keep: usize) -> io::Result<usize> {
        let mut files: Vec<(u64, PathBuf)> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy().to_string();
                name.strip_prefix("checkpoint_")
                    .and_then(|s| s.strip_suffix(".cumf"))
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(|i| (i, e.path()))
            })
            .collect();
        files.sort_by_key(|(i, _)| *i);
        let mut removed = 0;
        while files.len() > keep {
            let (iteration, path) = files.remove(0);
            fs::remove_file(path)?;
            self.remove_delta_chain(iteration)?;
            removed += 1;
        }
        Ok(removed)
    }

    /// Deletes every `delta_<iteration>_*.cumfd` record chained onto the
    /// given checkpoint iteration.
    fn remove_delta_chain(&self, iteration: u64) -> io::Result<()> {
        let prefix = format!("delta_{iteration:08}_");
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(&prefix) && name.ends_with(".cumfd") {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

fn write_factor<W: Write>(w: &mut W, m: &FactorMatrix) -> io::Result<()> {
    w.write_all(&(m.len() as u64).to_le_bytes())?;
    w.write_all(&(m.rank() as u64).to_le_bytes())?;
    for &v in m.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_factor<R: Read>(r: &mut R) -> io::Result<FactorMatrix> {
    let n = read_u64(r)? as usize;
    let f = read_u64(r)? as usize;
    let mut bytes = vec![0u8; n * f * 4];
    r.read_exact(&mut bytes)?;
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(FactorMatrix::from_vec(n, f, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let id = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("cumf_ckpt_test_{}_{id}", std::process::id()))
    }

    fn sample_checkpoint(iteration: u64, seed: u64) -> Checkpoint {
        Checkpoint {
            iteration,
            x: FactorMatrix::random(50, 8, 1.0, seed),
            theta: FactorMatrix::random(30, 8, 1.0, seed + 1),
        }
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let ckpt = sample_checkpoint(3, 1);
        let path = mgr.save(&ckpt).unwrap();
        let loaded = CheckpointManager::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_latest_picks_the_highest_iteration() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        mgr.save(&sample_checkpoint(1, 1)).unwrap();
        mgr.save(&sample_checkpoint(7, 2)).unwrap();
        mgr.save(&sample_checkpoint(4, 3)).unwrap();
        let latest = mgr.load_latest().unwrap().unwrap();
        assert_eq!(latest.iteration, 7);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_latest_on_empty_dir_is_none() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        assert!(mgr.load_latest().unwrap().is_none());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn async_save_is_observable_after_join() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let handle = mgr.save_async(sample_checkpoint(2, 9));
        let path = handle.join().unwrap().unwrap();
        assert!(path.exists());
        assert_eq!(mgr.load_latest().unwrap().unwrap().iteration, 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        for i in 1..=5 {
            mgr.save(&sample_checkpoint(i, i)).unwrap();
        }
        let removed = mgr.prune(2).unwrap();
        assert_eq!(removed, 3);
        let latest = mgr.load_latest().unwrap().unwrap();
        assert_eq!(latest.iteration, 5);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn prune_drops_the_delta_chains_of_pruned_checkpoints() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        for i in 1..=3 {
            mgr.save(&sample_checkpoint(i, i)).unwrap();
            mgr.save_delta(&CheckpointDelta {
                appended_users: None,
                appended_items: None,
                ..sample_delta(i, 1, 10 + i)
            })
            .unwrap();
        }
        mgr.prune(1).unwrap();
        let deltas: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.ends_with(".cumfd"))
            .collect();
        // Only the surviving checkpoint's chain remains.
        assert_eq!(deltas, vec!["delta_00000003_0001.cumfd".to_string()]);
        let (restored, replayed) = mgr.load_latest_with_deltas().unwrap().unwrap();
        assert_eq!(restored.iteration, 3);
        assert_eq!(replayed, 1);
        fs::remove_dir_all(dir).unwrap();
    }

    fn sample_delta(base: u64, seq: u64, seed: u64) -> CheckpointDelta {
        CheckpointDelta {
            base_iteration: base,
            seq,
            changed_ids: vec![1, 7, 40],
            changed_rows: FactorMatrix::random(3, 8, 1.0, seed),
            appended_users: Some(FactorMatrix::random(2, 8, 1.0, seed + 1)),
            appended_items: Some(FactorMatrix::random(4, 8, 1.0, seed + 2)),
        }
    }

    #[test]
    fn delta_save_and_load_roundtrip() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let delta = sample_delta(3, 1, 50);
        let path = mgr.save_delta(&delta).unwrap();
        assert_eq!(CheckpointManager::load_delta(&path).unwrap(), delta);
        // A delta with no appended rows roundtrips too.
        let lean = CheckpointDelta {
            appended_users: None,
            appended_items: None,
            seq: 2,
            ..sample_delta(3, 2, 60)
        };
        let path = mgr.save_delta(&lean).unwrap();
        assert_eq!(CheckpointManager::load_delta(&path).unwrap(), lean);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn restore_replays_the_delta_chain_in_order() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let base = sample_checkpoint(5, 70);
        mgr.save(&base).unwrap();
        // Two chained deltas; the second overwrites user 1 again, so replay
        // order matters.
        let d1 = sample_delta(5, 1, 80);
        let mut d2 = sample_delta(5, 2, 90);
        d2.appended_users = None;
        d2.appended_items = None;
        // A delta chained onto a *different* checkpoint must be ignored.
        let stray = sample_delta(4, 1, 99);
        mgr.save_delta(&d1).unwrap();
        mgr.save_delta(&d2).unwrap();
        mgr.save_delta(&stray).unwrap();

        let (restored, replayed) = mgr.load_latest_with_deltas().unwrap().unwrap();
        assert_eq!(replayed, 2);

        let mut expect = base.clone();
        d1.apply_to(&mut expect);
        d2.apply_to(&mut expect);
        assert_eq!(restored, expect);
        // Spot-check: user 1 carries d2's row, not d1's.
        assert_eq!(restored.x.vector(1), d2.changed_rows.vector(0));
        // Appended rows from d1 are present.
        assert_eq!(restored.x.len(), 52);
        assert_eq!(restored.theta.len(), 34);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn restore_without_deltas_is_the_plain_checkpoint() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let ckpt = sample_checkpoint(2, 7);
        mgr.save(&ckpt).unwrap();
        let (restored, replayed) = mgr.load_latest_with_deltas().unwrap().unwrap();
        assert_eq!(replayed, 0);
        assert_eq!(restored, ckpt);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "different checkpoint")]
    fn delta_refuses_a_mismatched_base() {
        let mut ckpt = sample_checkpoint(3, 1);
        sample_delta(9, 1, 2).apply_to(&mut ckpt);
    }

    #[test]
    fn corrupt_delta_is_rejected() {
        let dir = temp_dir();
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("delta_00000001_0001.cumfd");
        fs::write(&path, b"not a delta").unwrap();
        assert!(CheckpointManager::load_delta(&path).is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let dir = temp_dir();
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint_00000001.cumf");
        fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(CheckpointManager::load(&path).is_err());
        fs::remove_dir_all(dir).unwrap();
    }
}

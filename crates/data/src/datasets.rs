//! Descriptors of the paper's data sets (Table 5).
//!
//! Each descriptor carries the *full-scale* problem dimensions as reported
//! in the paper; these drive the analytic cost model (Table 3, Figure 11,
//! Table 1).  Convergence runs use [`DatasetSpec::scaled`] to obtain a
//! laptop-sized instance with the same mean ratings-per-user.

/// The named data sets of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Netflix Prize: 480 K users × 17.8 K items, 99 M ratings, f = 100.
    Netflix,
    /// Yahoo! Music KDD-Cup'11: 1 M users × 625 K items, 252.8 M ratings.
    YahooMusic,
    /// Hugewiki: 50 M rows × 39.8 K columns, 3.1 B non-zeros.
    Hugewiki,
    /// SparkALS benchmark (100×1 duplicated Amazon Reviews): 660 M × 2.4 M, 3.5 B.
    SparkAls,
    /// Factorbird benchmark: 229 M × 195 M, 38.5 B, f = 5.
    Factorbird,
    /// Facebook-scale workload: 1 B × 48 M, 112 B, f = 16.
    Facebook,
    /// The paper's largest run: the Facebook matrix with f = 100.
    CumfLargest,
}

impl PaperDataset {
    /// All Table 5 rows, in the paper's order.
    pub fn all() -> [PaperDataset; 7] {
        [
            PaperDataset::Netflix,
            PaperDataset::YahooMusic,
            PaperDataset::Hugewiki,
            PaperDataset::SparkAls,
            PaperDataset::Factorbird,
            PaperDataset::Facebook,
            PaperDataset::CumfLargest,
        ]
    }

    /// The descriptor for this data set.
    pub fn spec(self) -> DatasetSpec {
        match self {
            PaperDataset::Netflix => DatasetSpec {
                name: "Netflix",
                m: 480_189,
                n: 17_770,
                nz: 99_000_000,
                f: 100,
                lambda: 0.05,
            },
            PaperDataset::YahooMusic => DatasetSpec {
                name: "YahooMusic",
                m: 1_000_990,
                n: 624_961,
                nz: 252_800_000,
                f: 100,
                lambda: 1.4,
            },
            PaperDataset::Hugewiki => DatasetSpec {
                name: "Hugewiki",
                m: 50_082_603,
                n: 39_780,
                nz: 3_100_000_000,
                f: 100,
                lambda: 0.05,
            },
            PaperDataset::SparkAls => DatasetSpec {
                name: "SparkALS",
                m: 660_000_000,
                n: 2_400_000,
                nz: 3_500_000_000,
                f: 10,
                lambda: 0.05,
            },
            PaperDataset::Factorbird => DatasetSpec {
                name: "Factorbird",
                m: 229_000_000,
                n: 195_000_000,
                nz: 38_500_000_000,
                f: 5,
                lambda: 0.05,
            },
            PaperDataset::Facebook => DatasetSpec {
                name: "Facebook",
                m: 1_056_000_000,
                n: 48_000_000,
                nz: 112_000_000_000,
                f: 16,
                lambda: 0.05,
            },
            PaperDataset::CumfLargest => DatasetSpec {
                name: "cuMF (largest)",
                m: 1_056_000_000,
                n: 48_000_000,
                nz: 112_000_000_000,
                f: 100,
                lambda: 0.05,
            },
        }
    }
}

/// Full-scale dimensions of one data set, as in Table 5 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Data set name.
    pub name: &'static str,
    /// Number of rows (users) `m`.
    pub m: u64,
    /// Number of columns (items) `n`.
    pub n: u64,
    /// Number of ratings `Nz`.
    pub nz: u64,
    /// Latent dimension `f` used by the paper for this data set.
    pub f: u32,
    /// Regularization `λ`.
    pub lambda: f32,
}

impl DatasetSpec {
    /// Mean ratings per user, `Nz / m`.
    pub fn mean_ratings_per_row(&self) -> f64 {
        self.nz as f64 / self.m as f64
    }

    /// Mean ratings per item, `Nz / n`.
    pub fn mean_ratings_per_col(&self) -> f64 {
        self.nz as f64 / self.n as f64
    }

    /// Density `Nz / (m·n)`.
    pub fn density(&self) -> f64 {
        self.nz as f64 / (self.m as f64 * self.n as f64)
    }

    /// Number of model parameters `(m + n)·f` — the x-axis of Figure 2.
    pub fn model_parameters(&self) -> u64 {
        (self.m + self.n) * self.f as u64
    }

    /// A scaled-down instance suitable for running real numerics.
    ///
    /// Rows, columns and non-zeros are all scaled by `scale` (clamped so
    /// that at least 32 rows/columns and 256 ratings survive), which keeps
    /// the mean ratings-per-row of the original.  `f` and `λ` are preserved
    /// unless overridden by the caller afterwards.
    pub fn scaled(&self, scale: f64) -> DatasetSpec {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let m = ((self.m as f64 * scale).round() as u64).max(32);
        let n = ((self.n as f64 * scale).round() as u64).max(32);
        let nz_uncapped = ((self.nz as f64 * scale).round() as u64).max(256);
        // Never request more ratings than distinct cells.
        let nz = nz_uncapped.min(m * n);
        DatasetSpec {
            name: self.name,
            m,
            n,
            nz,
            f: self.f,
            lambda: self.lambda,
        }
    }

    /// Memory footprint in single-precision words of the CSR ratings plus
    /// both factor matrices — a quick feasibility check used by examples.
    pub fn footprint_words(&self) -> u64 {
        2 * self.nz + self.m + 1 + (self.m + self.n) * self.f as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_rows_match_the_paper() {
        let netflix = PaperDataset::Netflix.spec();
        assert_eq!(netflix.m, 480_189);
        assert_eq!(netflix.n, 17_770);
        assert_eq!(netflix.f, 100);
        assert!((netflix.lambda - 0.05).abs() < 1e-6);

        let yahoo = PaperDataset::YahooMusic.spec();
        assert_eq!(yahoo.m, 1_000_990);
        assert!((yahoo.lambda - 1.4).abs() < 1e-6);

        let fb = PaperDataset::Facebook.spec();
        assert_eq!(fb.f, 16);
        assert_eq!(fb.nz, 112_000_000_000);

        let largest = PaperDataset::CumfLargest.spec();
        assert_eq!(largest.f, 100);
        assert_eq!(largest.m, fb.m);
    }

    #[test]
    fn netflix_mean_ratings_per_user_is_about_200() {
        // §2.2: "one user rates around 200 items on average".
        let netflix = PaperDataset::Netflix.spec();
        let mean = netflix.mean_ratings_per_row();
        assert!(mean > 150.0 && mean < 250.0, "mean = {mean}");
    }

    #[test]
    fn yahoomusic_is_sparser_than_netflix() {
        // §5.3 attributes YahooMusic's smaller register/texture penalty to
        // its sparser rating matrix.
        let netflix = PaperDataset::Netflix.spec();
        let yahoo = PaperDataset::YahooMusic.spec();
        assert!(yahoo.density() < netflix.density());
    }

    #[test]
    fn figure2_ordering_by_ratings() {
        // Facebook has the most ratings; Netflix the fewest of the Table 5 sets.
        let all = PaperDataset::all();
        let nz: Vec<u64> = all.iter().map(|d| d.spec().nz).collect();
        assert_eq!(nz.iter().min(), Some(&PaperDataset::Netflix.spec().nz));
        assert_eq!(nz.iter().max(), Some(&PaperDataset::Facebook.spec().nz));
    }

    #[test]
    fn scaled_preserves_mean_degree_and_caps_nz() {
        let netflix = PaperDataset::Netflix.spec();
        let small = netflix.scaled(0.05);
        let ratio = small.mean_ratings_per_row() / netflix.mean_ratings_per_row();
        assert!(ratio > 0.9 && ratio < 1.1, "ratio = {ratio}");
        assert!(small.nz <= small.m * small.n);
        assert_eq!(small.f, netflix.f);
    }

    #[test]
    fn scaled_has_floor_sizes() {
        let tiny = PaperDataset::Netflix.spec().scaled(1e-9);
        assert!(tiny.m >= 32);
        assert!(tiny.n >= 32);
        assert!(tiny.nz >= 256 || tiny.nz == tiny.m * tiny.n);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn scale_zero_panics() {
        PaperDataset::Netflix.spec().scaled(0.0);
    }

    #[test]
    fn model_parameters_matches_formula() {
        let d = PaperDataset::Netflix.spec();
        assert_eq!(d.model_parameters(), (480_189 + 17_770) * 100);
    }
}

//! CUDA occupancy model.
//!
//! §3.3 of the paper explains the `bin`-size trade-off: staging a wider slice
//! of `Θᵀ_u` in shared memory speeds up the inner loop but "if a single
//! thread block consumes too much shared memory, other blocks are prohibited
//! from launching, resulting in low parallelism".  §3.4 adds the register
//! pressure side: holding the `f × f` accumulator in registers costs
//! `f²/f = f` registers per thread (plus scratch), which also bounds the
//! number of resident blocks.  This module computes exactly that resident-
//! block limit.

use crate::DeviceSpec;

/// Result of the occupancy calculation for one kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident thread blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident threads per SM (`blocks_per_sm × block_threads`).
    pub active_threads_per_sm: u32,
    /// Fraction of the SM's maximum resident threads that are active
    /// (0.0–1.0).
    pub occupancy: f64,
    /// Which resource bounds the launch.
    pub limiter: Limiter,
}

/// The resource that limits how many blocks are resident on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// The hardware cap on resident blocks.
    BlockSlots,
    /// The cap on resident threads.
    Threads,
    /// Shared-memory capacity.
    SharedMemory,
    /// Register-file capacity.
    Registers,
    /// The launch does not fit at all (zero resident blocks).
    DoesNotFit,
}

impl Occupancy {
    /// Computes occupancy for a kernel where each block has `block_threads`
    /// threads, each thread uses `regs_per_thread` 32-bit registers and each
    /// block allocates `shared_per_block_bytes` bytes of shared memory.
    pub fn compute(
        spec: &DeviceSpec,
        block_threads: u32,
        regs_per_thread: u32,
        shared_per_block_bytes: u32,
    ) -> Occupancy {
        assert!(block_threads > 0, "a block must have at least one thread");

        // Hard per-block validity checks first.
        let fits = block_threads <= spec.max_threads_per_block
            && regs_per_thread <= spec.max_registers_per_thread
            && shared_per_block_bytes <= spec.shared_mem_per_block_kib * 1024;
        if !fits {
            return Occupancy {
                blocks_per_sm: 0,
                active_threads_per_sm: 0,
                occupancy: 0.0,
                limiter: Limiter::DoesNotFit,
            };
        }

        let by_slots = spec.max_blocks_per_sm;
        let by_threads = spec.max_threads_per_sm / block_threads;
        let by_shared = (spec.shared_mem_per_sm_kib * 1024)
            .checked_div(shared_per_block_bytes)
            .unwrap_or(u32::MAX);
        let regs_per_block = regs_per_thread as u64 * block_threads as u64 * 4;
        let by_regs = (spec.register_file_per_sm_kib as u64 * 1024)
            .checked_div(regs_per_block)
            .map_or(u32::MAX, |b| b as u32);

        let blocks = by_slots.min(by_threads).min(by_shared).min(by_regs);
        let limiter = if blocks == 0 {
            Limiter::DoesNotFit
        } else if blocks == by_regs
            && by_regs <= by_shared
            && by_regs <= by_threads
            && by_regs <= by_slots
        {
            Limiter::Registers
        } else if blocks == by_shared && by_shared <= by_threads && by_shared <= by_slots {
            Limiter::SharedMemory
        } else if blocks == by_threads && by_threads <= by_slots {
            Limiter::Threads
        } else {
            Limiter::BlockSlots
        };

        let active = blocks * block_threads;
        Occupancy {
            blocks_per_sm: blocks,
            active_threads_per_sm: active,
            occupancy: active as f64 / spec.max_threads_per_sm as f64,
            limiter,
        }
    }

    /// Total resident blocks across the whole device.
    pub fn device_blocks(&self, spec: &DeviceSpec) -> u32 {
        self.blocks_per_sm * spec.num_sms
    }

    /// Number of waves needed to run `grid_blocks` blocks.
    pub fn waves(&self, spec: &DeviceSpec, grid_blocks: u64) -> u64 {
        let per_wave = self.device_blocks(spec) as u64;
        if per_wave == 0 {
            return u64::MAX;
        }
        grid_blocks.div_ceil(per_wave)
    }
}

/// Shared-memory bytes used by MO-ALS's per-block staging buffer
/// `Θᵀ_u[bin]`: `f × bin` single-precision floats (Algorithm 2, line 6).
pub fn mo_als_shared_bytes(f: u32, bin: u32) -> u32 {
    f * bin * crate::F32_BYTES as u32
}

/// Register count per thread for MO-ALS's register-held accumulator: the
/// `f × f` tile `A_u` is distributed over the block's `f` threads, i.e. `f`
/// accumulator registers per thread plus a fixed amount of scratch
/// (θ element, loop counters, pointers).
pub fn mo_als_regs_per_thread(f: u32, use_registers: bool) -> u32 {
    let scratch = 24;
    if use_registers {
        f + scratch
    } else {
        scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_kernel_is_limited_by_block_slots() {
        let spec = DeviceSpec::titan_x();
        let occ = Occupancy::compute(&spec, 32, 16, 0);
        assert_eq!(occ.limiter, Limiter::BlockSlots);
        assert_eq!(occ.blocks_per_sm, spec.max_blocks_per_sm);
    }

    #[test]
    fn thread_heavy_kernel_is_limited_by_threads() {
        let spec = DeviceSpec::titan_x();
        let occ = Occupancy::compute(&spec, 1024, 16, 0);
        assert_eq!(occ.limiter, Limiter::Threads);
        assert_eq!(occ.blocks_per_sm, 2);
        assert!((occ.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_large_bins() {
        let spec = DeviceSpec::titan_x();
        // f = 100 threads per block, bin = 100 → 100*100*4 = 40 KB per block;
        // 96 KB shared per SM allows only 2 resident blocks.
        let shared = mo_als_shared_bytes(100, 100);
        let occ = Occupancy::compute(&spec, 100, 32, shared);
        assert_eq!(occ.limiter, Limiter::SharedMemory);
        assert_eq!(occ.blocks_per_sm, 2);

        // With the paper's recommended bin in 10..30 the limit moves away
        // from shared memory and parallelism is much higher.
        let shared_small = mo_als_shared_bytes(100, 10);
        let occ_small = Occupancy::compute(&spec, 100, 32, shared_small);
        assert!(occ_small.blocks_per_sm > occ.blocks_per_sm);
        assert_ne!(occ_small.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn register_accumulator_limits_occupancy_for_large_f() {
        let spec = DeviceSpec::titan_x();
        // f = 100: 124 regs/thread × 100 threads × 4 B ≈ 49.6 KB per block;
        // the 256 KB register file allows 5 blocks.
        let regs = mo_als_regs_per_thread(100, true);
        let occ = Occupancy::compute(&spec, 100, regs, mo_als_shared_bytes(100, 20));
        assert_eq!(occ.limiter, Limiter::Registers);
        assert_eq!(occ.blocks_per_sm, 5);
        // Without register blocking more blocks fit.
        let occ_no_reg = Occupancy::compute(
            &spec,
            100,
            mo_als_regs_per_thread(100, false),
            mo_als_shared_bytes(100, 20),
        );
        assert!(occ_no_reg.blocks_per_sm > occ.blocks_per_sm);
    }

    #[test]
    fn oversized_block_does_not_fit() {
        let spec = DeviceSpec::titan_x();
        let occ = Occupancy::compute(&spec, 2048, 16, 0);
        assert_eq!(occ.limiter, Limiter::DoesNotFit);
        assert_eq!(occ.blocks_per_sm, 0);
        let occ = Occupancy::compute(&spec, 128, 16, 96 * 1024);
        assert_eq!(occ.limiter, Limiter::DoesNotFit);
    }

    #[test]
    fn waves_round_up() {
        let spec = DeviceSpec::titan_x();
        let occ = Occupancy::compute(&spec, 128, 32, 0);
        let per_wave = occ.device_blocks(&spec) as u64;
        assert_eq!(occ.waves(&spec, per_wave), 1);
        assert_eq!(occ.waves(&spec, per_wave + 1), 2);
        assert_eq!(occ.waves(&spec, 0), 0);
    }

    #[test]
    fn does_not_fit_waves_is_max() {
        let spec = DeviceSpec::titan_x();
        let occ = Occupancy::compute(&spec, 2048, 16, 0);
        assert_eq!(occ.waves(&spec, 10), u64::MAX);
    }
}

//! PCIe interconnect topology.
//!
//! §4.2 of the paper distinguishes two machine layouts:
//!
//! * a **flat** topology where every GPU hangs off one PCIe root, and
//! * a **dual-socket** topology where every two GPUs share a socket and
//!   inter-socket traffic crosses the (slower) processor interconnect.
//!
//! PCIe links are full duplex — "data transfer in both directions can happen
//! simultaneously without affecting each other" — which is what the parallel
//! reduction schemes exploit.  This module models each directed link's
//! capacity and computes the completion time of a set of concurrent
//! transfers as the most-loaded link's transfer time (a bandwidth-only,
//! store-and-forward-free model, adequate for the multi-megabyte transfers
//! ALS performs).

use std::collections::HashMap;

/// Endpoint of a transfer: the host (CPU memory) or a GPU device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Host memory.
    Host,
    /// GPU device with the given index.
    Gpu(usize),
}

/// A single direct memory transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Payload size in bytes.
    pub bytes: f64,
}

impl Transfer {
    /// Convenience constructor.
    pub fn new(src: Endpoint, dst: Endpoint, bytes: f64) -> Self {
        Self { src, dst, bytes }
    }
}

/// Machine interconnect layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// All GPUs directly attached to a single PCIe root (Figure 5 (a)).
    FlatPcie,
    /// Two sockets, each owning half the GPUs; cross-socket traffic pays the
    /// processor-interconnect penalty (Figure 5 (b)).
    DualSocket,
}

/// Directed links of the interconnect model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Link {
    /// A GPU's outbound PCIe lane.
    GpuOut(usize),
    /// A GPU's inbound PCIe lane.
    GpuIn(usize),
    /// Host root complex of a socket, direction host→devices.
    HostOut(usize),
    /// Host root complex of a socket, direction devices→host.
    HostIn(usize),
    /// Inter-socket interconnect, direction socket 0 → socket 1.
    Socket0To1,
    /// Inter-socket interconnect, direction socket 1 → socket 0.
    Socket1To0,
}

/// PCIe/NUMA topology of one multi-GPU machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PcieTopology {
    kind: TopologyKind,
    n_gpus: usize,
    /// Per-direction bandwidth of one GPU's PCIe link, GB/s.
    pub pcie_gbs: f64,
    /// Per-direction bandwidth of the inter-socket interconnect, GB/s.
    pub inter_socket_gbs: f64,
    /// Per-direction bandwidth of one socket's host root complex, GB/s
    /// (shared by all GPUs on that socket when they stream from host
    /// memory simultaneously — the PCIe IO contention noted in §5.4).
    pub host_link_gbs: f64,
    /// Fixed latency per transfer, seconds.
    pub latency_s: f64,
}

impl PcieTopology {
    /// Flat PCIe topology (Figure 5 (a)) with default Gen3 x16 numbers.
    pub fn flat(n_gpus: usize) -> Self {
        Self {
            kind: TopologyKind::FlatPcie,
            n_gpus,
            pcie_gbs: 16.0,
            inter_socket_gbs: 16.0,
            host_link_gbs: 25.0,
            latency_s: 10e-6,
        }
    }

    /// Dual-socket topology (Figure 5 (b)): every two GPUs share a socket and
    /// inter-socket traffic goes through a slower processor interconnect.
    pub fn dual_socket(n_gpus: usize) -> Self {
        Self {
            kind: TopologyKind::DualSocket,
            n_gpus,
            pcie_gbs: 16.0,
            inter_socket_gbs: 9.6,
            host_link_gbs: 25.0,
            latency_s: 10e-6,
        }
    }

    /// Which layout this topology models.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of GPUs attached.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Number of sockets (1 for flat, 2 for dual-socket).
    pub fn n_sockets(&self) -> usize {
        match self.kind {
            TopologyKind::FlatPcie => 1,
            TopologyKind::DualSocket => 2,
        }
    }

    /// The socket a GPU is attached to.
    pub fn socket_of(&self, gpu: usize) -> usize {
        assert!(gpu < self.n_gpus, "gpu index out of range");
        match self.kind {
            TopologyKind::FlatPcie => 0,
            TopologyKind::DualSocket => {
                if gpu < self.n_gpus.div_ceil(2) {
                    0
                } else {
                    1
                }
            }
        }
    }

    /// True when two GPUs share a socket (always true on a flat topology).
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }

    /// GPUs attached to the given socket.
    pub fn gpus_on_socket(&self, socket: usize) -> Vec<usize> {
        (0..self.n_gpus)
            .filter(|&g| self.socket_of(g) == socket)
            .collect()
    }

    fn endpoint_socket(&self, e: Endpoint) -> usize {
        match e {
            Endpoint::Host => 0, // host memory is interleaved; attribute root usage per destination socket below
            Endpoint::Gpu(g) => self.socket_of(g),
        }
    }

    /// The directed links a transfer occupies.
    fn links_of(&self, t: &Transfer) -> Vec<Link> {
        let mut links = Vec::with_capacity(3);
        match (t.src, t.dst) {
            (Endpoint::Gpu(a), Endpoint::Gpu(b)) => {
                links.push(Link::GpuOut(a));
                links.push(Link::GpuIn(b));
                if !self.same_socket(a, b) {
                    if self.socket_of(a) == 0 {
                        links.push(Link::Socket0To1);
                    } else {
                        links.push(Link::Socket1To0);
                    }
                }
            }
            (Endpoint::Host, Endpoint::Gpu(b)) => {
                links.push(Link::HostOut(self.socket_of(b)));
                links.push(Link::GpuIn(b));
            }
            (Endpoint::Gpu(a), Endpoint::Host) => {
                links.push(Link::GpuOut(a));
                links.push(Link::HostIn(self.socket_of(a)));
            }
            (Endpoint::Host, Endpoint::Host) => {}
        }
        links
    }

    fn link_bandwidth(&self, link: Link) -> f64 {
        match link {
            Link::GpuOut(_) | Link::GpuIn(_) => self.pcie_gbs,
            Link::HostOut(_) | Link::HostIn(_) => self.host_link_gbs,
            Link::Socket0To1 | Link::Socket1To0 => self.inter_socket_gbs,
        }
    }

    /// Completion time of a single transfer running alone.
    pub fn transfer_time(&self, t: &Transfer) -> f64 {
        if t.bytes <= 0.0 {
            return 0.0;
        }
        let bw = self
            .links_of(t)
            .into_iter()
            .map(|l| self.link_bandwidth(l))
            .fold(f64::INFINITY, f64::min);
        if bw.is_infinite() {
            return 0.0;
        }
        self.latency_s + t.bytes / (bw * 1e9)
    }

    /// Completion time of a *set* of transfers all launched at the same
    /// instant, assuming perfect bandwidth sharing: each directed link's
    /// finish time is its total queued bytes over its bandwidth, and the
    /// batch finishes when the most loaded link drains.
    pub fn concurrent_transfer_time(&self, transfers: &[Transfer]) -> f64 {
        let mut load: HashMap<Link, f64> = HashMap::new();
        let mut any = false;
        for t in transfers {
            if t.bytes <= 0.0 {
                continue;
            }
            any = true;
            for link in self.links_of(t) {
                *load.entry(link).or_insert(0.0) += t.bytes;
            }
        }
        if !any {
            return 0.0;
        }
        let worst = load
            .into_iter()
            .map(|(link, bytes)| bytes / (self.link_bandwidth(link) * 1e9))
            .fold(0.0f64, f64::max);
        self.latency_s + worst
    }

    /// Effective host→device bandwidth seen by each of `k` GPUs on the same
    /// socket streaming from host memory simultaneously (the PCIe IO
    /// contention of §5.4).
    pub fn host_bandwidth_per_gpu(&self, k: usize) -> f64 {
        if k == 0 {
            return self.host_link_gbs;
        }
        (self.host_link_gbs / k as f64).min(self.pcie_gbs)
    }

    /// Suppresses the unused-variable warning path for `endpoint_socket` —
    /// exposed for diagnostics.
    pub fn socket_of_endpoint(&self, e: Endpoint) -> usize {
        self.endpoint_socket(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_assignment() {
        let flat = PcieTopology::flat(4);
        assert_eq!(flat.n_sockets(), 1);
        assert!(flat.same_socket(0, 3));

        let dual = PcieTopology::dual_socket(4);
        assert_eq!(dual.n_sockets(), 2);
        assert_eq!(dual.socket_of(0), 0);
        assert_eq!(dual.socket_of(1), 0);
        assert_eq!(dual.socket_of(2), 1);
        assert_eq!(dual.socket_of(3), 1);
        assert!(dual.same_socket(0, 1));
        assert!(!dual.same_socket(1, 2));
        assert_eq!(dual.gpus_on_socket(1), vec![2, 3]);
    }

    #[test]
    fn single_transfer_time_uses_slowest_link() {
        let dual = PcieTopology::dual_socket(4);
        let bytes = 1.6e9; // 1.6 GB
        let intra = dual.transfer_time(&Transfer::new(Endpoint::Gpu(0), Endpoint::Gpu(1), bytes));
        let inter = dual.transfer_time(&Transfer::new(Endpoint::Gpu(1), Endpoint::Gpu(2), bytes));
        // Intra-socket: 16 GB/s → 0.1 s; inter-socket: 9.6 GB/s → ~0.167 s.
        assert!((intra - (dual.latency_s + 0.1)).abs() < 1e-6);
        assert!(inter > intra * 1.5);
    }

    #[test]
    fn full_duplex_opposite_directions_do_not_contend() {
        let flat = PcieTopology::flat(2);
        let bytes = 1.6e9;
        let one = flat.transfer_time(&Transfer::new(Endpoint::Gpu(0), Endpoint::Gpu(1), bytes));
        let both = flat.concurrent_transfer_time(&[
            Transfer::new(Endpoint::Gpu(0), Endpoint::Gpu(1), bytes),
            Transfer::new(Endpoint::Gpu(1), Endpoint::Gpu(0), bytes),
        ]);
        assert!(
            (both - one).abs() < 1e-9,
            "duplex transfers should overlap perfectly"
        );
    }

    #[test]
    fn same_direction_transfers_contend_on_the_inbound_link() {
        let flat = PcieTopology::flat(3);
        let bytes = 1.6e9;
        let one = flat.transfer_time(&Transfer::new(Endpoint::Gpu(0), Endpoint::Gpu(2), bytes));
        let two = flat.concurrent_transfer_time(&[
            Transfer::new(Endpoint::Gpu(0), Endpoint::Gpu(2), bytes),
            Transfer::new(Endpoint::Gpu(1), Endpoint::Gpu(2), bytes),
        ]);
        // Both transfers funnel into GPU 2's inbound lane: twice the time.
        assert!((two - (2.0 * (one - flat.latency_s) + flat.latency_s)).abs() < 1e-9);
    }

    #[test]
    fn host_fanout_contends_on_the_root_complex() {
        let flat = PcieTopology::flat(4);
        let bytes = 2.5e9; // 2.5 GB: 0.1 s at the 25 GB/s root
        let alone = flat.concurrent_transfer_time(&[Transfer::new(
            Endpoint::Host,
            Endpoint::Gpu(0),
            bytes,
        )]);
        let four = flat.concurrent_transfer_time(
            &(0..4)
                .map(|g| Transfer::new(Endpoint::Host, Endpoint::Gpu(g), bytes))
                .collect::<Vec<_>>(),
        );
        // The shared 25 GB/s host link becomes the bottleneck: 10/25 = 0.4 s.
        assert!(four > alone * 2.0);
        assert!((four - (flat.latency_s + 4.0 * bytes / 25e9)).abs() < 1e-6);
    }

    #[test]
    fn inter_socket_link_is_the_bottleneck_for_cross_socket_shuffles() {
        let dual = PcieTopology::dual_socket(4);
        let bytes = 1e9;
        // All four GPUs send to a GPU on the other socket, two in each direction.
        let transfers = vec![
            Transfer::new(Endpoint::Gpu(0), Endpoint::Gpu(2), bytes),
            Transfer::new(Endpoint::Gpu(1), Endpoint::Gpu(3), bytes),
            Transfer::new(Endpoint::Gpu(2), Endpoint::Gpu(0), bytes),
            Transfer::new(Endpoint::Gpu(3), Endpoint::Gpu(1), bytes),
        ];
        let t = dual.concurrent_transfer_time(&transfers);
        // Each direction of the socket link carries 2 GB at 9.6 GB/s.
        let expected = dual.latency_s + 2.0 * bytes / 9.6e9;
        assert!((t - expected).abs() < 1e-9);
        // The same shuffle kept within sockets is faster.
        let intra = vec![
            Transfer::new(Endpoint::Gpu(0), Endpoint::Gpu(1), bytes),
            Transfer::new(Endpoint::Gpu(1), Endpoint::Gpu(0), bytes),
            Transfer::new(Endpoint::Gpu(2), Endpoint::Gpu(3), bytes),
            Transfer::new(Endpoint::Gpu(3), Endpoint::Gpu(2), bytes),
        ];
        assert!(dual.concurrent_transfer_time(&intra) < t);
    }

    #[test]
    fn zero_byte_transfers_cost_nothing() {
        let flat = PcieTopology::flat(2);
        assert_eq!(
            flat.transfer_time(&Transfer::new(Endpoint::Gpu(0), Endpoint::Gpu(1), 0.0)),
            0.0
        );
        assert_eq!(flat.concurrent_transfer_time(&[]), 0.0);
    }

    #[test]
    fn host_bandwidth_per_gpu_degrades_with_fanout() {
        let flat = PcieTopology::flat(4);
        assert_eq!(flat.host_bandwidth_per_gpu(1), 16.0); // capped by the GPU link
        assert!(flat.host_bandwidth_per_gpu(4) < flat.host_bandwidth_per_gpu(2));
    }
}

//! High-level training API.
//!
//! [`MatrixFactorizer`] is what the examples and the benchmark harness
//! drive: pick a backend (reference CPU, single simulated GPU, or multi-GPU
//! SU-ALS), call [`MatrixFactorizer::fit`], and get back a per-iteration
//! convergence history with both wall-clock and simulated GPU time — the two
//! axes the paper's figures use.

use crate::als::{BaseAls, MoAlsEngine, SuAlsConfig, SuAlsEngine};
use crate::checkpoint::{Checkpoint, CheckpointManager};
use crate::config::AlsConfig;
use crate::engine::IncrementalEngine;
use crate::instrument::{TrainMetrics, TrainMetricsReport};
use crate::loss;
use crate::planner::PartitionPlan;
use crate::reduce::ReductionScheme;
use cumf_gpu_sim::{GpuCluster, TopologyKind};
use cumf_linalg::batch::SegmentView;
use cumf_linalg::FactorMatrix;
use cumf_sparse::{Csr, Entry};
use std::sync::Arc;
use std::time::Instant;

/// Which engine executes the factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// The plain CPU reference (Algorithm 1); no simulated timing.
    Reference,
    /// MO-ALS on one simulated GPU (Algorithm 2).
    SingleGpu,
    /// SU-ALS on several simulated GPUs (Algorithm 3).
    MultiGpu {
        /// Number of simulated GPUs.
        n_gpus: usize,
        /// Interconnect layout.
        topology: TopologyKind,
        /// Cross-GPU reduction scheme.
        reduction: ReductionScheme,
        /// Optional explicit partition plan (otherwise the planner decides).
        plan: Option<PartitionPlan>,
    },
}

impl Backend {
    /// One simulated Titan X (the paper's single-GPU setting).
    pub fn single_gpu() -> Self {
        Backend::SingleGpu
    }

    /// `n` simulated Titan X cards on a flat PCIe topology with one-phase
    /// parallel reduction.
    pub fn multi_gpu(n_gpus: usize) -> Self {
        Backend::MultiGpu {
            n_gpus,
            topology: TopologyKind::FlatPcie,
            reduction: ReductionScheme::OnePhase,
            plan: None,
        }
    }

    /// Four GPUs on a dual-socket machine with the topology-aware two-phase
    /// reduction (the paper's large-scale setting).
    pub fn multi_gpu_dual_socket(n_gpus: usize) -> Self {
        Backend::MultiGpu {
            n_gpus,
            topology: TopologyKind::DualSocket,
            reduction: ReductionScheme::TwoPhase,
            plan: None,
        }
    }
}

/// Convergence record of one ALS iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// Training RMSE after the iteration (`NaN` when tracking is disabled).
    pub train_rmse: f64,
    /// Test RMSE after the iteration (`NaN` when no test set was given).
    pub test_rmse: f64,
    /// Simulated GPU seconds of this iteration (0 for the reference backend).
    pub sim_time_s: f64,
    /// Cumulative simulated GPU seconds including this iteration.
    pub cumulative_sim_time_s: f64,
    /// Host wall-clock seconds the iteration actually took.
    pub wall_time_s: f64,
}

/// The result of a [`MatrixFactorizer::fit`] call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Per-iteration convergence records.
    pub iterations: Vec<IterationRecord>,
}

impl TrainReport {
    /// Test RMSE after the final iteration (`NaN` when no test set).
    pub fn final_test_rmse(&self) -> f64 {
        self.iterations
            .last()
            .map(|r| r.test_rmse)
            .unwrap_or(f64::NAN)
    }

    /// Training RMSE after the final iteration.
    pub fn final_train_rmse(&self) -> f64 {
        self.iterations
            .last()
            .map(|r| r.train_rmse)
            .unwrap_or(f64::NAN)
    }

    /// Total simulated GPU seconds.
    pub fn total_sim_time(&self) -> f64 {
        self.iterations
            .last()
            .map(|r| r.cumulative_sim_time_s)
            .unwrap_or(0.0)
    }

    /// Simulated seconds needed to reach a test RMSE at or below `target`;
    /// `None` if the run never got there.
    pub fn sim_time_to_rmse(&self, target: f64) -> Option<f64> {
        self.iterations
            .iter()
            .find(|r| r.test_rmse <= target)
            .map(|r| r.cumulative_sim_time_s)
    }
}

/// The high-level matrix factorization model.
pub struct MatrixFactorizer {
    config: AlsConfig,
    backend: Backend,
    engine: Option<Box<dyn IncrementalEngine>>,
    checkpoints: Option<CheckpointManager>,
    warm_start: Option<(FactorMatrix, FactorMatrix)>,
    metrics: Arc<TrainMetrics>,
}

impl MatrixFactorizer {
    /// Creates a factorizer with the given hyper-parameters and backend.
    pub fn new(config: AlsConfig, backend: Backend) -> Self {
        config.validate();
        Self {
            config,
            backend,
            engine: None,
            checkpoints: None,
            warm_start: None,
            metrics: Arc::new(TrainMetrics::new()),
        }
    }

    /// Starts the next [`MatrixFactorizer::fit`] from the given factors
    /// instead of a random initialization.
    ///
    /// # Panics
    /// Panics (at `fit` time) if the factor shapes do not match the training
    /// matrix or the configured rank.
    pub fn with_warm_start(mut self, x: FactorMatrix, theta: FactorMatrix) -> Self {
        self.warm_start = Some((x, theta));
        self
    }

    /// Resumes from a saved [`Checkpoint`]: the next `fit` call continues
    /// training from the checkpointed factors (§4.4's failure-recovery
    /// path).
    pub fn with_checkpoint_restore(self, checkpoint: Checkpoint) -> Self {
        self.with_warm_start(checkpoint.x, checkpoint.theta)
    }

    /// Enables checkpointing of the factors after every iteration into
    /// `dir`.
    pub fn with_checkpointing(
        mut self,
        dir: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Self> {
        self.checkpoints = Some(CheckpointManager::new(dir)?);
        Ok(self)
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> &AlsConfig {
        &self.config
    }

    fn build_engine(&self, train: &Csr) -> Box<dyn IncrementalEngine> {
        let mut engine = self.build_engine_cold(train);
        // The metrics sink goes to every engine; SU-ALS training solves are
        // simulator-priced and record nothing, so only its fold-ins show up.
        engine.attach_metrics(Arc::clone(&self.metrics));
        if let Some((x, theta)) = &self.warm_start {
            engine.set_factors(x.clone(), theta.clone());
        }
        engine
    }

    fn build_engine_cold(&self, train: &Csr) -> Box<dyn IncrementalEngine> {
        match &self.backend {
            Backend::Reference => Box::new(BaseAls::new(self.config.clone(), train.clone())),
            Backend::SingleGpu => {
                Box::new(MoAlsEngine::on_titan_x(self.config.clone(), train.clone()))
            }
            Backend::MultiGpu {
                n_gpus,
                topology,
                reduction,
                plan,
            } => {
                let cluster = match topology {
                    TopologyKind::FlatPcie => GpuCluster::titan_x_flat(*n_gpus),
                    TopologyKind::DualSocket => GpuCluster::new(
                        cumf_gpu_sim::DeviceSpec::titan_x(),
                        cumf_gpu_sim::PcieTopology::dual_socket(*n_gpus),
                        *n_gpus,
                    ),
                };
                let su_cfg = SuAlsConfig {
                    als: self.config.clone(),
                    reduction: *reduction,
                    plan: *plan,
                };
                Box::new(SuAlsEngine::new(su_cfg, train.clone(), cluster))
            }
        }
    }

    /// Fits the model to `train`, reporting per-iteration RMSE on `test`
    /// (pass an empty slice to skip test evaluation).
    ///
    /// ```
    /// use cumf_core::config::AlsConfig;
    /// use cumf_core::trainer::{Backend, MatrixFactorizer};
    /// use cumf_data::synth::SyntheticConfig;
    /// use cumf_data::train_test_split;
    ///
    /// let data = SyntheticConfig { m: 80, n: 40, nnz: 1600, ..Default::default() }.generate();
    /// let split = train_test_split(&data.ratings, 0.1, 7);
    ///
    /// let config = AlsConfig { f: 8, iterations: 4, ..Default::default() };
    /// let mut model = MatrixFactorizer::new(config, Backend::Reference);
    /// let report = model.fit(&split.train, &split.test);
    ///
    /// assert_eq!(report.iterations.len(), 4);
    /// // ALS monotonically decreases the training objective, so train RMSE
    /// // after the last iteration is no worse than after the first.
    /// assert!(report.final_train_rmse() <= report.iterations[0].train_rmse + 1e-9);
    /// assert!(report.final_test_rmse().is_finite());
    /// ```
    pub fn fit(&mut self, train: &Csr, test: &[Entry]) -> TrainReport {
        let mut engine = self.build_engine(train);
        let mut report = TrainReport::default();
        let mut cumulative_sim = 0.0f64;

        for iter in 1..=self.config.iterations {
            let wall_start = Instant::now();
            let sim = engine.train_sweep();
            cumulative_sim += sim;
            let wall = wall_start.elapsed().as_secs_f64();

            let train_rmse = if self.config.track_rmse {
                engine.train_rmse()
            } else {
                f64::NAN
            };
            let test_rmse = if self.config.track_rmse && !test.is_empty() {
                loss::rmse(engine.x(), engine.theta(), test)
            } else {
                f64::NAN
            };

            if let Some(mgr) = &self.checkpoints {
                let _ = mgr.save(&Checkpoint {
                    iteration: iter as u64,
                    x: engine.x().clone(),
                    theta: engine.theta().clone(),
                });
            }

            report.iterations.push(IterationRecord {
                iteration: iter,
                train_rmse,
                test_rmse,
                sim_time_s: sim,
                cumulative_sim_time_s: cumulative_sim,
                wall_time_s: wall,
            });
        }

        self.engine = Some(engine);
        report
    }

    /// User factors of the fitted model.
    ///
    /// # Panics
    /// Panics if [`MatrixFactorizer::fit`] has not been called.
    pub fn x(&self) -> &FactorMatrix {
        self.fitted_engine().x()
    }

    /// Item factors of the fitted model.
    pub fn theta(&self) -> &FactorMatrix {
        self.fitted_engine().theta()
    }

    /// The fitted engine behind the unified [`IncrementalEngine`] trait.
    ///
    /// # Panics
    /// Panics if [`MatrixFactorizer::fit`] has not been called.
    pub fn fitted_engine(&self) -> &dyn IncrementalEngine {
        self.engine
            .as_deref()
            .expect("call fit() before reading factors")
    }

    /// Predicted rating for `(user, item)`.
    ///
    /// ```
    /// use cumf_core::config::AlsConfig;
    /// use cumf_core::trainer::{Backend, MatrixFactorizer};
    /// use cumf_data::synth::SyntheticConfig;
    ///
    /// let data = SyntheticConfig { m: 60, n: 30, nnz: 900, ..Default::default() }.generate();
    /// let train = data.to_csr();
    ///
    /// let config = AlsConfig { f: 8, iterations: 3, ..Default::default() };
    /// let mut model = MatrixFactorizer::new(config, Backend::Reference);
    /// model.fit(&train, &[]);
    ///
    /// // Predictions are the dot products of the learned factors: finite,
    /// // and identical on repeated calls.
    /// let p = model.predict(0, 5);
    /// assert!(p.is_finite());
    /// assert_eq!(p, model.predict(0, 5));
    /// ```
    pub fn predict(&self, user: u32, item: u32) -> f32 {
        loss::predict(self.x(), self.theta(), user, item)
    }

    /// Solves the ALS normal equations for a batch of new-or-updated users
    /// against the fitted (frozen) item factors — the incremental fold-in
    /// path.  `ratings` carries one row per folded-in user over the full
    /// item catalog (build it with [`crate::foldin::ratings_rows`]); row `i`
    /// of the result is the factor vector for row `i`'s user.  The trained
    /// model is untouched: feed the rows into a serving-side delta
    /// publication instead of retraining.
    ///
    /// ```
    /// use cumf_core::config::AlsConfig;
    /// use cumf_core::foldin::ratings_rows;
    /// use cumf_core::trainer::{Backend, MatrixFactorizer};
    /// use cumf_data::synth::SyntheticConfig;
    ///
    /// let data = SyntheticConfig { m: 80, n: 40, nnz: 1600, ..Default::default() }.generate();
    /// let train = data.to_csr();
    /// let mut model = MatrixFactorizer::new(
    ///     AlsConfig { f: 8, iterations: 3, ..Default::default() },
    ///     Backend::Reference,
    /// );
    /// model.fit(&train, &[]);
    ///
    /// // A brand-new user rated three items; fold them in without retraining.
    /// let batch = ratings_rows(&[vec![(0, 4.0), (7, 3.0), (21, 5.0)]], train.n_cols());
    /// let folded = model.fold_in_users(&batch);
    /// assert_eq!(folded.len(), 1);
    /// assert!(folded.vector(0).iter().any(|&v| v != 0.0));
    /// ```
    ///
    /// # Panics
    /// Panics if [`MatrixFactorizer::fit`] has not been called or the
    /// ratings do not span the item catalog.
    pub fn fold_in_users(&self, ratings: &Csr) -> FactorMatrix {
        self.fitted_engine().fold_in_users(ratings)
    }

    /// [`MatrixFactorizer::fold_in_users`] against a segmented item catalog
    /// (e.g. the serving tier's `ItemStore::views()`), assembling each
    /// user's normal equations straight from the segment slabs — no
    /// contiguous catalog-order `Θ` copy is materialized.
    ///
    /// # Panics
    /// Panics if [`MatrixFactorizer::fit`] has not been called, the
    /// segments do not tile the catalog, or their rank differs from the
    /// model's.
    pub fn fold_in_users_segmented(
        &self,
        ratings: &Csr,
        segments: &[SegmentView<'_>],
    ) -> FactorMatrix {
        self.fitted_engine()
            .fold_in_users_segmented(ratings, segments)
    }

    /// A snapshot of the trainer-side latency metrics: per-row
    /// Hermitian-assembly and solve phases, whole `solve_side` calls, and
    /// fold-in batches (see [`crate::instrument::TrainMetrics`]).  Empty
    /// until [`MatrixFactorizer::fit`] or
    /// [`MatrixFactorizer::fold_in_users`] has run; the SU-ALS backend only
    /// records fold-ins (its training solves go through the
    /// simulator-priced reduction path).
    pub fn train_metrics(&self) -> TrainMetricsReport {
        self.metrics.report()
    }

    /// The live, shared metrics sink (for periodic reporters).
    pub fn train_metrics_handle(&self) -> Arc<TrainMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Top-`k` recommendations for `user`, excluding the items listed in
    /// `exclude` (typically the items the user has already rated).
    /// Returns `(item, predicted_rating)` pairs sorted by score.
    ///
    /// ```
    /// use cumf_core::config::AlsConfig;
    /// use cumf_core::trainer::{Backend, MatrixFactorizer};
    /// use cumf_data::synth::SyntheticConfig;
    ///
    /// let data = SyntheticConfig { m: 60, n: 30, nnz: 900, ..Default::default() }.generate();
    /// let train = data.to_csr();
    ///
    /// let config = AlsConfig { f: 8, iterations: 3, ..Default::default() };
    /// let mut model = MatrixFactorizer::new(config, Backend::Reference);
    /// model.fit(&train, &[]);
    ///
    /// let (seen, _) = train.row(0);
    /// let recs = model.recommend(0, 5, seen);
    ///
    /// assert_eq!(recs.len(), 5);
    /// // Sorted by predicted rating, and never recommends a seen item.
    /// assert!(recs.windows(2).all(|w| w[0].1 >= w[1].1));
    /// assert!(recs.iter().all(|(item, _)| !seen.contains(item)));
    /// ```
    pub fn recommend(&self, user: u32, k: usize, exclude: &[u32]) -> Vec<(u32, f32)> {
        let theta = self.theta();
        let x = self.x();
        // Single-request snapshot path: the same blocked scoring + bounded
        // heap the `cumf-serve` batch scorer runs per user, instead of
        // scoring and sorting the whole catalog.
        let excluded: std::collections::HashSet<u32> = exclude.iter().copied().collect();
        cumf_linalg::retrieve_top_k(
            x.vector(user as usize),
            theta.data(),
            theta.rank(),
            k,
            cumf_linalg::topk::DEFAULT_ITEM_BLOCK,
            |v| excluded.contains(&v),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::SyntheticConfig;
    use cumf_data::train_test_split;

    fn problem() -> (Csr, Vec<Entry>) {
        let data = SyntheticConfig {
            m: 250,
            n: 120,
            nnz: 8000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate();
        let split = train_test_split(&data.ratings, 0.1, 3);
        (split.train, split.test)
    }

    fn config(iterations: usize) -> AlsConfig {
        AlsConfig {
            f: 12,
            lambda: 0.05,
            iterations,
            ..Default::default()
        }
    }

    #[test]
    fn reference_backend_converges() {
        let (train, test) = problem();
        let mut model = MatrixFactorizer::new(config(5), Backend::Reference);
        let report = model.fit(&train, &test);
        assert_eq!(report.iterations.len(), 5);
        assert!(report.final_train_rmse() < 0.4);
        assert!(report.final_test_rmse() < 1.0);
        assert_eq!(report.total_sim_time(), 0.0);
    }

    #[test]
    fn single_gpu_backend_reports_simulated_time() {
        let (train, test) = problem();
        let mut model = MatrixFactorizer::new(config(3), Backend::single_gpu());
        let report = model.fit(&train, &test);
        assert!(report.total_sim_time() > 0.0);
        assert!(report
            .iterations
            .windows(2)
            .all(|w| w[1].cumulative_sim_time_s > w[0].cumulative_sim_time_s));
    }

    #[test]
    fn multi_gpu_backend_matches_single_gpu_rmse() {
        let (train, test) = problem();
        let mut single = MatrixFactorizer::new(config(3), Backend::single_gpu());
        let mut multi = MatrixFactorizer::new(config(3), Backend::multi_gpu(2));
        let rs = single.fit(&train, &test);
        let rm = multi.fit(&train, &test);
        assert!((rs.final_test_rmse() - rm.final_test_rmse()).abs() < 0.05);
    }

    #[test]
    fn predictions_and_recommendations_work() {
        let (train, test) = problem();
        let mut model = MatrixFactorizer::new(config(4), Backend::Reference);
        model.fit(&train, &test);
        let p = model.predict(0, 0);
        assert!(p.is_finite());
        let (seen, _) = train.row(0);
        let recs = model.recommend(0, 5, seen);
        assert_eq!(recs.len(), 5);
        // Recommendations exclude already-rated items and are sorted.
        for (item, _) in &recs {
            assert!(!seen.contains(item));
        }
        assert!(recs.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn rmse_tracking_can_be_disabled() {
        let (train, _) = problem();
        let cfg = AlsConfig {
            track_rmse: false,
            ..config(2)
        };
        let mut model = MatrixFactorizer::new(cfg, Backend::Reference);
        let report = model.fit(&train, &[]);
        assert!(report.final_train_rmse().is_nan());
    }

    #[test]
    fn sim_time_to_rmse_finds_the_crossing_iteration() {
        let (train, test) = problem();
        let mut model = MatrixFactorizer::new(config(6), Backend::single_gpu());
        let report = model.fit(&train, &test);
        let final_rmse = report.final_test_rmse();
        let t = report.sim_time_to_rmse(final_rmse + 1e-9);
        assert!(t.is_some());
        assert!(t.unwrap() <= report.total_sim_time() + 1e-12);
        assert!(report.sim_time_to_rmse(0.0).is_none());
    }

    #[test]
    fn checkpointing_writes_restorable_files() {
        let (train, test) = problem();
        let dir = std::env::temp_dir().join(format!("cumf_trainer_ckpt_{}", std::process::id()));
        let mut model = MatrixFactorizer::new(config(2), Backend::Reference)
            .with_checkpointing(&dir)
            .unwrap();
        model.fit(&train, &test);
        let mgr = CheckpointManager::new(&dir).unwrap();
        let latest = mgr.load_latest().unwrap().unwrap();
        assert_eq!(latest.iteration, 2);
        assert_eq!(latest.x.max_abs_diff(model.x()), 0.0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn warm_start_resumes_exactly_where_the_checkpoint_left_off() {
        let (train, test) = problem();
        let dir = std::env::temp_dir().join(format!("cumf_warm_start_{}", std::process::id()));
        let mut full = MatrixFactorizer::new(config(4), Backend::Reference)
            .with_checkpointing(&dir)
            .unwrap();
        let full_report = full.fit(&train, &test);

        // Restore the iteration-2 checkpoint into a *fresh* trainer and run
        // the remaining two iterations: ALS is deterministic, so the resumed
        // trajectory must coincide with the original run's iterations 3–4.
        let ckpt_path = dir.join("checkpoint_00000002.cumf");
        let ckpt = CheckpointManager::load(&ckpt_path).unwrap();
        assert_eq!(ckpt.iteration, 2);
        let mut resumed =
            MatrixFactorizer::new(config(2), Backend::Reference).with_checkpoint_restore(ckpt);
        let resumed_report = resumed.fit(&train, &test);

        for (r, f) in resumed_report
            .iterations
            .iter()
            .zip(&full_report.iterations[2..])
        {
            assert!(
                (r.train_rmse - f.train_rmse).abs() < 1e-9,
                "iteration {}: resumed {} vs original {}",
                f.iteration,
                r.train_rmse,
                f.train_rmse
            );
        }
        assert_eq!(resumed.x().max_abs_diff(full.x()), 0.0);
        assert_eq!(resumed.theta().max_abs_diff(full.theta()), 0.0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "X has the wrong number of rows")]
    fn warm_start_with_mismatched_shapes_panics() {
        let (train, _) = problem();
        let mut model = MatrixFactorizer::new(config(1), Backend::Reference)
            .with_warm_start(FactorMatrix::zeros(3, 12), FactorMatrix::zeros(120, 12));
        model.fit(&train, &[]);
    }

    #[test]
    #[should_panic(expected = "call fit()")]
    fn reading_factors_before_fit_panics() {
        let model = MatrixFactorizer::new(config(1), Backend::Reference);
        let _ = model.x();
    }

    #[test]
    fn fit_populates_train_metrics() {
        let (train, _) = problem();
        let mut model = MatrixFactorizer::new(config(3), Backend::Reference);
        assert_eq!(model.train_metrics().rows_solved, 0, "empty before fit");
        model.fit(&train, &[]);

        let r = model.train_metrics();
        // Two solve_side calls per iteration (update X, update Θ).
        assert_eq!(r.solve_side.count(), 6);
        // Every non-empty row of R and Rᵀ records both phases, every
        // iteration — at most (m + n) rows each.
        assert_eq!(r.assembly.count(), r.solve.count());
        assert_eq!(r.rows_solved, r.assembly.count());
        assert!(r.rows_solved >= 6, "rows must have been timed");
        assert!(r.rows_solved <= 3 * (250 + 120));
        // Whole-call time dominates any single row's phases.
        assert!(r.solve_side.max_ns() >= r.assembly.max_ns());
        assert_eq!(r.fold_in.count(), 0, "no fold-in ran");

        // Fold-in records its batch latency through the same sink.
        let batch = crate::foldin::ratings_rows(&[vec![(0, 4.0), (5, 3.0)]], train.n_cols());
        model.fold_in_users(&batch);
        let r = model.train_metrics();
        assert_eq!(r.fold_in.count(), 1);
        assert_eq!(r.solve_side.count(), 7, "fold-in is one more solve_side");
    }

    #[test]
    fn single_gpu_backend_also_records_metrics() {
        let (train, _) = problem();
        let mut model = MatrixFactorizer::new(config(2), Backend::single_gpu());
        model.fit(&train, &[]);
        let r = model.train_metrics();
        assert_eq!(r.solve_side.count(), 4);
        assert!(r.rows_solved > 0);
        let json = r.exporter().to_json();
        assert!(json.contains("\"train_solve_side_count\":4"));
        assert!(json.contains("\"train_assembly_p50_ns\":"));
    }
}

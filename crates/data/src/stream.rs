//! Streaming rating ingestion: the data-side half of the online loop.
//!
//! Batch training consumes a frozen `R`; a deployed recommender keeps
//! receiving ratings after the model ships.  This module models that feed:
//!
//! * [`RatingStream`] — a pull-based source of time-ordered rating
//!   mutations over a fixed item catalog;
//! * [`SyntheticMutationStream`] — a synthetic source that continues a
//!   generated [`crate::synth::SyntheticDataset`]: events
//!   are drawn from the same Zipf popularity/activity alias tables and
//!   valued by the same ground-truth low-rank model (plus noise), so
//!   incremental training on the stream is statistically consistent with
//!   the batch that preceded it.  A configurable slice of events comes from
//!   *new* users the batch never saw — the fold-in workload;
//! * [`ReplayStream`] — replays recorded ratings (a triplet file or an
//!   in-memory list) in order;
//! * [`StreamBatcher`] — a bounded-channel producer/consumer bridge that
//!   stamps each event's **ingest instant** and hands the training side
//!   time-ordered [`MiniBatch`]es.  The bound is the backpressure knob: a
//!   slow trainer stalls the producer instead of buffering unboundedly.
//!
//! The ingest instants survive all the way to the serving tier, where the
//! freshness histogram (`serve_freshness_*`) measures ingest → first
//! visible snapshot per event.

use crate::synth::{gaussian, AliasTable, SyntheticDataset};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, TryRecvError, TrySendError};
use cumf_linalg::blas::dot;
use cumf_linalg::FactorMatrix;
use cumf_sparse::Entry;
use rand::prelude::*;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A pull-based source of time-ordered rating mutations.
///
/// Implementations must emit item ids below [`RatingStream::n_items`]; user
/// ids are unbounded (ids beyond the trained matrix are *new* users the
/// online loop folds in or SGD-absorbs).
pub trait RatingStream {
    /// The item-catalog width every event's item id falls under.
    fn n_items(&self) -> u32;

    /// Pulls the next rating mutation, or `None` once the stream is
    /// exhausted.
    fn next_rating(&mut self) -> Option<Entry>;
}

/// Configuration of a [`SyntheticMutationStream`].
#[derive(Debug, Clone, PartialEq)]
pub struct MutationStreamConfig {
    /// Total number of events the stream emits before reporting exhaustion.
    pub events: usize,
    /// Size of the pool of brand-new users (ids `m..m + new_users`) that may
    /// appear in the stream.
    pub new_users: u32,
    /// Probability that an event comes from the new-user pool.
    pub new_user_fraction: f64,
    /// Standard deviation of the additive noise on streamed ratings.
    pub noise_std: f32,
    /// RNG seed; the same seed replays the identical event sequence.
    pub seed: u64,
}

impl Default for MutationStreamConfig {
    fn default() -> Self {
        Self {
            events: 1000,
            new_users: 0,
            new_user_fraction: 0.0,
            noise_std: 0.1,
            seed: 42,
        }
    }
}

/// A synthetic mutation stream continuing a generated data set (see the
/// module docs).
pub struct SyntheticMutationStream {
    config: MutationStreamConfig,
    n_items: u32,
    trained_users: u32,
    rating_min: f32,
    rating_max: f32,
    rating_mid: f32,
    true_x: FactorMatrix,
    extra_x: FactorMatrix,
    true_theta: FactorMatrix,
    user_dist: AliasTable,
    item_dist: AliasTable,
    rng: StdRng,
    emitted: usize,
}

impl SyntheticMutationStream {
    /// Builds the stream from the data set the batch model was trained on.
    pub fn new(dataset: &SyntheticDataset, config: MutationStreamConfig) -> Self {
        let base = &dataset.config;
        assert!(
            config.new_user_fraction == 0.0 || config.new_users > 0,
            "a non-zero new-user fraction needs a new-user pool"
        );
        let extra_x = FactorMatrix::random_centered(
            config.new_users as usize,
            base.rank,
            base.factor_half_width(),
            config.seed ^ 0x5EED_CAFE,
        );
        Self {
            n_items: base.n,
            trained_users: base.m,
            rating_min: base.rating_min,
            rating_max: base.rating_max,
            rating_mid: (base.rating_min + base.rating_max) / 2.0,
            true_x: dataset.true_x.clone(),
            extra_x,
            true_theta: dataset.true_theta.clone(),
            user_dist: AliasTable::from_zipf(base.m as usize, base.user_zipf),
            item_dist: AliasTable::from_zipf(base.n as usize, base.item_zipf),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            emitted: 0,
        }
    }
}

impl RatingStream for SyntheticMutationStream {
    fn n_items(&self) -> u32 {
        self.n_items
    }

    fn next_rating(&mut self) -> Option<Entry> {
        if self.emitted >= self.config.events {
            return None;
        }
        self.emitted += 1;
        let from_new_pool =
            self.config.new_users > 0 && self.rng.random::<f64>() < self.config.new_user_fraction;
        let (user, x_row) = if from_new_pool {
            let k = self.rng.random_range(0..self.config.new_users);
            (self.trained_users + k, self.extra_x.vector(k as usize))
        } else {
            let u = self.user_dist.sample(&mut self.rng);
            (u, self.true_x.vector(u as usize))
        };
        let item = self.item_dist.sample(&mut self.rng);
        let mean = self.rating_mid + dot(x_row, self.true_theta.vector(item as usize));
        let noise = gaussian(&mut self.rng) * self.config.noise_std;
        Some(Entry {
            row: user,
            col: item,
            val: (mean + noise).clamp(self.rating_min, self.rating_max),
        })
    }
}

/// Replays recorded ratings in order.
pub struct ReplayStream {
    entries: std::vec::IntoIter<Entry>,
    n_items: u32,
}

impl ReplayStream {
    /// Replays an in-memory list over a catalog of `n_items` items.
    ///
    /// # Panics
    /// Panics if an entry's item id is outside the catalog.
    pub fn from_entries(entries: Vec<Entry>, n_items: u32) -> Self {
        assert!(
            entries.iter().all(|e| e.col < n_items),
            "replayed rating item id out of range"
        );
        Self {
            entries: entries.into_iter(),
            n_items,
        }
    }

    /// Replays a `user,item,rating` triplet file (see
    /// [`crate::io::read_csv_triplets`]) in file order.
    pub fn from_csv(
        path: &Path,
        delimiter: char,
        has_header: bool,
    ) -> Result<Self, crate::io::IoError> {
        let coo = crate::io::read_csv_triplets(path, delimiter, has_header)?;
        let n_items = coo.n_cols();
        Ok(Self::from_entries(coo.entries().to_vec(), n_items))
    }
}

impl RatingStream for ReplayStream {
    fn n_items(&self) -> u32 {
        self.n_items
    }

    fn next_rating(&mut self) -> Option<Entry> {
        self.entries.next()
    }
}

/// One rating mutation as ingested: the entry plus the instant the batcher
/// accepted it (the zero point of the freshness measurement).
#[derive(Debug, Clone, Copy)]
pub struct RatingEvent {
    /// The rating mutation.
    pub entry: Entry,
    /// When the batcher ingested the event.
    pub ingested_at: Instant,
}

/// A time-ordered slice of the stream, as handed to the training side.
#[derive(Debug, Clone)]
pub struct MiniBatch {
    /// Events in ingest order.
    pub events: Vec<RatingEvent>,
}

impl MiniBatch {
    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The bare rating entries, in ingest order.
    pub fn entries(&self) -> Vec<Entry> {
        self.events.iter().map(|e| e.entry).collect()
    }
}

/// What the producer does when the bounded channel is full — the
/// backpressure policy of a [`StreamBatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until the consumer drains (the original, and
    /// default, behaviour): no event is ever lost, at the price of stalling
    /// ingestion behind a slow trainer.
    #[default]
    Block,
    /// Shed load instead of stalling: drop the **oldest** queued event to
    /// make room for the new one, so the window the trainer sees stays
    /// fresh.  Every shed event increments
    /// [`StreamBatcher::dropped_events`].
    DropOldest,
}

/// Bridges a [`RatingStream`] to the training side through a bounded
/// channel: a producer thread pulls the stream and stamps ingest instants;
/// [`StreamBatcher::next_batch`] drains time-ordered mini-batches.
pub struct StreamBatcher {
    rx: Receiver<RatingEvent>,
    producer: Option<JoinHandle<()>>,
    dropped: Arc<AtomicU64>,
    closed: Arc<AtomicBool>,
}

impl StreamBatcher {
    /// Spawns the producer over `stream` with a channel bound of
    /// `capacity` events (the backpressure knob), blocking the producer
    /// when the channel fills ([`BackpressurePolicy::Block`]).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn spawn<S>(stream: S, capacity: usize) -> Self
    where
        S: RatingStream + Send + 'static,
    {
        Self::spawn_with_policy(stream, capacity, BackpressurePolicy::default())
    }

    /// [`StreamBatcher::spawn`] under an explicit [`BackpressurePolicy`].
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn spawn_with_policy<S>(mut stream: S, capacity: usize, policy: BackpressurePolicy) -> Self
    where
        S: RatingStream + Send + 'static,
    {
        assert!(capacity > 0, "stream batcher needs a positive capacity");
        let (tx, rx) = bounded::<RatingEvent>(capacity);
        let dropped = Arc::new(AtomicU64::new(0));
        let closed = Arc::new(AtomicBool::new(false));
        // DropOldest needs its own receiver handle to pop the head of the
        // queue.  Block must NOT hold one: a blocked `send` unblocks on
        // receiver disconnect, which a producer-held clone would prevent.
        let drain = matches!(policy, BackpressurePolicy::DropOldest).then(|| rx.clone());
        let producer = std::thread::spawn({
            let dropped = Arc::clone(&dropped);
            let closed = Arc::clone(&closed);
            move || {
                while let Some(entry) = stream.next_rating() {
                    // ordering-ok: the flag is a plain stop signal; Acquire
                    // pairs with Drop's Release store
                    if closed.load(Ordering::Acquire) {
                        return;
                    }
                    let mut event = RatingEvent {
                        entry,
                        ingested_at: Instant::now(),
                    };
                    match (policy, &drain) {
                        (BackpressurePolicy::Block, _) => {
                            // A send fails only when the consumer dropped
                            // the batcher; the producer just winds down.
                            if tx.send(event).is_err() {
                                return;
                            }
                        }
                        (BackpressurePolicy::DropOldest, Some(drain)) => loop {
                            match tx.try_send(event) {
                                Ok(()) => break,
                                Err(TrySendError::Full(e)) => {
                                    event = e;
                                    // ordering-ok: same stop signal as above
                                    if closed.load(Ordering::Acquire) {
                                        return;
                                    }
                                    // Shed the head; a consumer racing us to
                                    // it simply leaves room and no drop.
                                    if drain.try_recv().is_ok() {
                                        // ordering-ok: monotonic counter
                                        dropped.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(TrySendError::Disconnected(_)) => return,
                            }
                        },
                        (BackpressurePolicy::DropOldest, None) => unreachable!(),
                    }
                }
            }
        });
        Self {
            rx,
            producer: Some(producer),
            dropped,
            closed,
        }
    }

    /// Events the producer shed under [`BackpressurePolicy::DropOldest`]
    /// (always 0 under [`BackpressurePolicy::Block`]).
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) // ordering-ok: monotonic counter read
    }

    /// Blocks up to `max_wait` for the first event, then drains whatever
    /// else is already queued (up to `max_events`).  Returns `None` once
    /// the stream is exhausted and fully drained; an empty batch is never
    /// returned.
    pub fn next_batch(&self, max_events: usize, max_wait: Duration) -> Option<MiniBatch> {
        assert!(
            max_events > 0,
            "mini-batches need room for at least one event"
        );
        let first = match self.rx.recv_timeout(max_wait) {
            Ok(event) => event,
            Err(RecvTimeoutError::Timeout) => return Some(MiniBatch { events: Vec::new() }),
            Err(RecvTimeoutError::Disconnected) => return None,
        };
        let mut events = vec![first];
        while events.len() < max_events {
            match self.rx.try_recv() {
                Ok(event) => events.push(event),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        Some(MiniBatch { events })
    }
}

impl Drop for StreamBatcher {
    fn drop(&mut self) {
        // Raise the stop flag (a DropOldest producer holds its own receiver
        // clone, so channel disconnect alone cannot reach it), then close
        // the channel so a Block producer stuck in `send` unblocks, then
        // join.
        self.closed.store(true, Ordering::Release); // ordering-ok: Release pairs with the producer's Acquire loads
        let (tx, rx) = bounded(1);
        drop(tx);
        self.rx = rx;
        if let Some(handle) = self.producer.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticConfig;

    fn dataset() -> SyntheticDataset {
        SyntheticConfig {
            m: 120,
            n: 60,
            nnz: 3000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
    }

    #[test]
    fn synthetic_stream_is_deterministic_and_bounded() {
        let d = dataset();
        let cfg = MutationStreamConfig {
            events: 500,
            ..Default::default()
        };
        let collect = |mut s: SyntheticMutationStream| {
            let mut out = Vec::new();
            while let Some(e) = s.next_rating() {
                out.push(e);
            }
            out
        };
        let a = collect(SyntheticMutationStream::new(&d, cfg.clone()));
        let b = collect(SyntheticMutationStream::new(&d, cfg.clone()));
        assert_eq!(a.len(), 500);
        assert_eq!(a, b, "same seed must replay the same stream");
        for e in &a {
            assert!(e.col < d.config.n);
            assert!(e.row < d.config.m, "no new-user pool was configured");
            assert!(e.val >= d.config.rating_min && e.val <= d.config.rating_max);
        }
    }

    #[test]
    fn new_user_pool_mixes_unseen_users_in() {
        let d = dataset();
        let mut s = SyntheticMutationStream::new(
            &d,
            MutationStreamConfig {
                events: 2000,
                new_users: 10,
                new_user_fraction: 0.3,
                ..Default::default()
            },
        );
        let mut new_events = 0usize;
        let mut total = 0usize;
        while let Some(e) = s.next_rating() {
            total += 1;
            if e.row >= d.config.m {
                assert!(e.row < d.config.m + 10);
                new_events += 1;
            }
        }
        let frac = new_events as f64 / total as f64;
        assert!(
            (0.2..0.4).contains(&frac),
            "~30% of events should be new users, got {frac}"
        );
    }

    #[test]
    fn streamed_values_are_consistent_with_the_ground_truth() {
        // The stream prices ratings with the same model that generated the
        // batch, so the ground-truth prediction error on streamed events is
        // near the configured noise level — that's what makes incremental
        // training on the stream meaningful.
        let d = dataset();
        let mut s = SyntheticMutationStream::new(
            &d,
            MutationStreamConfig {
                events: 2000,
                noise_std: 0.05,
                ..Default::default()
            },
        );
        let mut se = 0.0f64;
        let mut count = 0usize;
        while let Some(e) = s.next_rating() {
            let pred = d.config.mean_rating(dot(
                d.true_x.vector(e.row as usize),
                d.true_theta.vector(e.col as usize),
            ));
            let pred = pred.clamp(d.config.rating_min, d.config.rating_max);
            se += ((e.val - pred) as f64).powi(2);
            count += 1;
        }
        let rmse = (se / count as f64).sqrt();
        assert!(rmse < 0.1, "stream noise floor should be tight, got {rmse}");
    }

    #[test]
    fn replay_stream_preserves_order() {
        let entries = vec![
            Entry {
                row: 0,
                col: 2,
                val: 1.0,
            },
            Entry {
                row: 5,
                col: 0,
                val: 3.0,
            },
        ];
        let mut s = ReplayStream::from_entries(entries.clone(), 3);
        assert_eq!(s.n_items(), 3);
        assert_eq!(s.next_rating(), Some(entries[0]));
        assert_eq!(s.next_rating(), Some(entries[1]));
        assert_eq!(s.next_rating(), None);
    }

    #[test]
    #[should_panic(expected = "item id out of range")]
    fn replay_stream_validates_the_catalog() {
        ReplayStream::from_entries(
            vec![Entry {
                row: 0,
                col: 9,
                val: 1.0,
            }],
            3,
        );
    }

    #[test]
    fn batcher_delivers_every_event_in_ingest_order() {
        let d = dataset();
        let cfg = MutationStreamConfig {
            events: 300,
            ..Default::default()
        };
        let mut expect = Vec::new();
        let mut reference = SyntheticMutationStream::new(&d, cfg.clone());
        while let Some(e) = reference.next_rating() {
            expect.push(e);
        }

        // A small capacity forces the producer through backpressure stalls.
        let batcher = StreamBatcher::spawn(SyntheticMutationStream::new(&d, cfg), 16);
        let mut got = Vec::new();
        let mut last_stamp: Option<Instant> = None;
        while let Some(batch) = batcher.next_batch(50, Duration::from_secs(5)) {
            for ev in &batch.events {
                if let Some(prev) = last_stamp {
                    assert!(ev.ingested_at >= prev, "ingest instants must be ordered");
                }
                last_stamp = Some(ev.ingested_at);
            }
            got.extend(batch.entries());
        }
        assert_eq!(got, expect, "the batcher must not drop or reorder events");
        assert_eq!(batcher.dropped_events(), 0, "Block never sheds events");
    }

    #[test]
    fn drop_oldest_sheds_the_head_and_counts_it() {
        // 100 instant events into a capacity-4 channel with no consumer
        // draining: under Block the producer would stall forever; under
        // DropOldest it must run to completion on its own, shedding the 96
        // oldest events and leaving the 4 newest queued.
        let entries: Vec<Entry> = (0..100u32)
            .map(|i| Entry {
                row: i,
                col: 0,
                val: i as f32,
            })
            .collect();
        let batcher = StreamBatcher::spawn_with_policy(
            ReplayStream::from_entries(entries, 1),
            4,
            BackpressurePolicy::DropOldest,
        );
        // No consumer races the producer here, so the end state is exact;
        // poll until the producer has worked through the stream.
        let deadline = Instant::now() + Duration::from_secs(10);
        while batcher.dropped_events() < 96 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(batcher.dropped_events(), 96);
        let batch = batcher
            .next_batch(100, Duration::from_secs(5))
            .expect("the freshest window must survive");
        let rows: Vec<u32> = batch.entries().iter().map(|e| e.row).collect();
        assert_eq!(rows, vec![96, 97, 98, 99], "oldest-first shedding");
        assert!(
            batcher.next_batch(100, Duration::from_secs(5)).is_none(),
            "stream exhausted after the retained window"
        );
    }

    #[test]
    fn dropping_a_drop_oldest_batcher_joins_cleanly() {
        // The DropOldest producer holds its own receiver clone, so Drop's
        // channel-disconnect trick alone cannot stop it — the stop flag
        // must.  A long stream + tiny capacity would otherwise keep the
        // producer shedding forever.
        let d = dataset();
        let batcher = StreamBatcher::spawn_with_policy(
            SyntheticMutationStream::new(
                &d,
                MutationStreamConfig {
                    events: 10_000_000,
                    ..Default::default()
                },
            ),
            2,
            BackpressurePolicy::DropOldest,
        );
        let _ = batcher.next_batch(10, Duration::from_millis(50));
        drop(batcher);
    }

    #[test]
    fn empty_wait_yields_an_empty_batch_not_exhaustion() {
        // A live-but-quiet stream: nothing arrives within the wait, but the
        // producer is still up, so the loop should keep polling.
        struct Quiet;
        impl RatingStream for Quiet {
            fn n_items(&self) -> u32 {
                1
            }
            fn next_rating(&mut self) -> Option<Entry> {
                std::thread::sleep(Duration::from_millis(200));
                None
            }
        }
        let batcher = StreamBatcher::spawn(Quiet, 4);
        let batch = batcher
            .next_batch(10, Duration::from_millis(1))
            .expect("stream is not exhausted yet");
        assert!(batch.is_empty());
    }

    #[test]
    fn dropping_the_batcher_unblocks_the_producer() {
        let d = dataset();
        let batcher = StreamBatcher::spawn(
            SyntheticMutationStream::new(
                &d,
                MutationStreamConfig {
                    events: 100_000,
                    ..Default::default()
                },
            ),
            2,
        );
        // Consume a little, then drop while the producer is blocked on the
        // full channel; Drop must join without hanging.
        let _ = batcher.next_batch(10, Duration::from_secs(1));
        drop(batcher);
    }
}

//! Per-user LRU result cache with snapshot-generation invalidation.
//!
//! Recommendation traffic is heavily skewed (the same Zipf skew the data
//! generator models), so a small cache in front of the scorer absorbs the
//! hottest users.  Entries are stamped with the snapshot generation they
//! were computed against; a hot-swap therefore invalidates the whole cache
//! *lazily* — stale entries are dropped on first touch, with no stop-the-
//! world purge on the publish path.
//!
//! The implementation is a classic intrusive doubly-linked LRU over a slab,
//! so `get`/`insert` are O(1) and eviction is exact (oldest-touched first).

use std::collections::HashMap;

/// Cache key: the full identity of a request, exclusion list included —
/// two requests for the same user with different exclusions must never
/// share a result, so the list is stored verbatim rather than hashed down
/// to a collidable digest.  Equality is order-sensitive; callers pass the
/// seen-item list as stored (CSR order), which is stable for a given user,
/// so a permuted list merely misses and rescores.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    user: u32,
    k: usize,
    exclude: Box<[u32]>,
}

impl CacheKey {
    /// Builds the key for `(user, k, exclude)`.
    pub fn new(user: u32, k: usize, exclude: &[u32]) -> Self {
        Self {
            user,
            k,
            exclude: exclude.into(),
        }
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    key: CacheKey,
    generation: u64,
    value: Vec<(u32, f32)>,
    prev: usize,
    next: usize,
}

/// Bounded LRU of ranked result lists.  `capacity == 0` disables caching
/// (every `get` misses, every `insert` is dropped).
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of live entries (stale ones included until touched).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, requiring the entry to come from `generation`.
    /// A generation mismatch removes the stale entry and reports a miss.
    pub fn get(&mut self, key: &CacheKey, generation: u64) -> Option<&Vec<(u32, f32)>> {
        let &idx = self.map.get(key)?;
        if self.slab[idx].generation != generation {
            self.remove(key);
            return None;
        }
        self.touch(idx);
        Some(&self.slab[idx].value)
    }

    /// Inserts (or refreshes) a result computed against `generation`,
    /// evicting the least-recently-used entry when full.
    pub fn insert(&mut self, key: CacheKey, generation: u64, value: Vec<(u32, f32)>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].generation = generation;
            self.slab[idx].value = value;
            self.touch(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            let evicted = self.slab[lru].key.clone();
            self.remove(&evicted);
        }
        let node = Node {
            key: key.clone(),
            generation,
            value,
            prev: NIL,
            next: self.head,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.attach_front(idx);
        self.map.insert(key, idx);
    }

    /// Removes one entry; returns whether it existed.
    pub fn remove(&mut self, key: &CacheKey) -> bool {
        let Some(idx) = self.map.remove(key) else {
            return false;
        };
        self.detach(idx);
        self.slab[idx].value = Vec::new();
        self.free.push(idx);
        true
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.detach(idx);
        self.attach_front(idx);
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(user: u32) -> CacheKey {
        CacheKey::new(user, 10, &[])
    }

    fn val(v: u32) -> Vec<(u32, f32)> {
        vec![(v, 1.0)]
    }

    #[test]
    fn get_after_insert_hits_same_generation_only() {
        let mut c = ResultCache::new(4);
        c.insert(key(1), 1, val(7));
        assert_eq!(c.get(&key(1), 1), Some(&val(7)));
        // A published generation invalidates lazily.
        assert_eq!(c.get(&key(1), 2), None);
        assert!(c.is_empty(), "stale entry is dropped on touch");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(3);
        for u in 0..3 {
            c.insert(key(u), 1, val(u));
        }
        // Touch 0 so 1 becomes the LRU.
        assert!(c.get(&key(0), 1).is_some());
        c.insert(key(3), 1, val(3));
        assert_eq!(c.len(), 3);
        assert!(c.get(&key(1), 1).is_none(), "LRU entry evicted");
        assert!(c.get(&key(0), 1).is_some());
        assert!(c.get(&key(2), 1).is_some());
        assert!(c.get(&key(3), 1).is_some());
    }

    #[test]
    fn different_exclusions_do_not_collide() {
        let a = CacheKey::new(1, 10, &[1, 2, 3]);
        let b = CacheKey::new(1, 10, &[1, 2, 4]);
        let c = CacheKey::new(1, 10, &[]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        let mut cache = ResultCache::new(4);
        cache.insert(a, 1, val(1));
        assert!(cache.get(&b, 1).is_none());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), 1, val(1));
        c.insert(key(2), 1, val(2));
        c.insert(key(1), 1, val(9)); // refresh → key 2 is now LRU
        c.insert(key(3), 1, val(3));
        assert_eq!(c.get(&key(1), 1), Some(&val(9)));
        assert!(c.get(&key(2), 1).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(key(1), 1, val(1));
        assert!(c.get(&key(1), 1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn slab_slots_are_reused_after_eviction() {
        let mut c = ResultCache::new(2);
        for round in 0..100u32 {
            c.insert(key(round), 1, val(round));
        }
        assert_eq!(c.len(), 2);
        assert!(c.slab.len() <= 3, "slab grew: {}", c.slab.len());
    }
}

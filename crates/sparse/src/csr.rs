//! Compressed Sparse Row (CSR) matrix.
//!
//! CSR is the format the cuMF `get_hermitian_x` kernel walks: for each row
//! `u` it gathers the columns `θ_v` with `r_uv ≠ 0` from `Θᵀ`.  The paper's
//! memory-footprint formula `2·Nz + m + 1` (Table 3) corresponds exactly to
//! this layout (values + column indices + row pointers).

use crate::{Coo, Csc, Entry, SparseError};

/// A sparse matrix in Compressed Sparse Row form.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: u32,
    n_cols: u32,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// Builds a CSR matrix from raw arrays, validating structural invariants.
    pub fn from_raw(
        n_rows: u32,
        n_cols: u32,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != n_rows as usize + 1 {
            return Err(SparseError::InconsistentLength {
                what: "row_ptr",
                expected: n_rows as usize + 1,
                got: row_ptr.len(),
            });
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::InconsistentLength {
                what: "col_idx/values",
                expected: values.len(),
                got: col_idx.len(),
            });
        }
        if *row_ptr.last().unwrap_or(&0) != values.len() {
            return Err(SparseError::InconsistentLength {
                what: "row_ptr[last]",
                expected: values.len(),
                got: *row_ptr.last().unwrap_or(&0),
            });
        }
        for (i, w) in row_ptr.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(SparseError::NonMonotonicPtr { at: i + 1 });
            }
        }
        for &c in &col_idx {
            if c >= n_cols {
                return Err(SparseError::ColOutOfBounds { col: c, n_cols });
            }
        }
        Ok(Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR matrix from a COO matrix (entries may be unsorted;
    /// duplicates are kept as distinct stored elements).
    pub fn from_coo(coo: &Coo) -> Self {
        let n_rows = coo.n_rows();
        let n_cols = coo.n_cols();
        let nnz = coo.nnz();
        let mut row_counts = vec![0usize; n_rows as usize + 1];
        for e in coo.entries() {
            row_counts[e.row as usize + 1] += 1;
        }
        for i in 1..row_counts.len() {
            row_counts[i] += row_counts[i - 1];
        }
        let row_ptr = row_counts.clone();
        let mut cursor = row_counts;
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        for e in coo.entries() {
            let pos = cursor[e.row as usize];
            col_idx[pos] = e.col;
            values[pos] = e.val;
            cursor[e.row as usize] += 1;
        }
        // Sort each row's columns for deterministic iteration order.
        let mut csr = Self {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        };
        csr.sort_rows();
        csr
    }

    fn sort_rows(&mut self) {
        for u in 0..self.n_rows as usize {
            let (s, e) = (self.row_ptr[u], self.row_ptr[u + 1]);
            let mut pairs: Vec<(u32, f32)> = self.col_idx[s..e]
                .iter()
                .copied()
                .zip(self.values[s..e].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|p| p.0);
            for (k, (c, v)) in pairs.into_iter().enumerate() {
                self.col_idx[s + k] = c;
                self.values[s + k] = v;
            }
        }
    }

    /// Number of rows `m`.
    pub fn n_rows(&self) -> u32 {
        self.n_rows
    }

    /// Number of columns `n`.
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Number of stored non-zeros `Nz`.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`m + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (`Nz` entries).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value array (`Nz` entries).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of non-zeros in row `u` (the paper's `n_{x_u}`).
    pub fn nnz_row(&self, u: u32) -> usize {
        let u = u as usize;
        self.row_ptr[u + 1] - self.row_ptr[u]
    }

    /// Returns row `u` as parallel slices of column indices and values.
    pub fn row(&self, u: u32) -> (&[u32], &[f32]) {
        let u = u as usize;
        let (s, e) = (self.row_ptr[u], self.row_ptr[u + 1]);
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Iterates over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Entry> + '_ {
        (0..self.n_rows).flat_map(move |u| {
            let (cols, vals) = self.row(u);
            cols.iter()
                .zip(vals.iter())
                .map(move |(&c, &v)| Entry::new(u, c, v))
        })
    }

    /// Converts back to COO form.
    pub fn to_coo(&self) -> Coo {
        let entries: Vec<Entry> = self.iter().collect();
        Coo::from_entries(self.n_rows, self.n_cols, entries)
            .expect("CSR indices are validated at construction")
    }

    /// Converts to CSC form (column-major compressed).
    pub fn to_csc(&self) -> Csc {
        Csc::from_csr(self)
    }

    /// Returns the transpose as a new CSR matrix.
    ///
    /// `Rᵀ` in CSR is structurally identical to `R` in CSC, so the update-Θ
    /// pass can either use this or [`Csr::to_csc`] directly.
    pub fn transpose(&self) -> Csr {
        let csc = self.to_csc();
        Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            row_ptr: csc.col_ptr().to_vec(),
            col_idx: csc.row_idx().to_vec(),
            values: csc.values().to_vec(),
        }
    }

    /// Value at `(u, v)` if stored.
    pub fn get(&self, u: u32, v: u32) -> Option<f32> {
        let (cols, vals) = self.row(u);
        cols.binary_search(&v).ok().map(|i| vals[i])
    }

    /// Memory footprint of this matrix in 4-byte words, matching Table 3's
    /// `2·Nz + m + 1` accounting (values + column indices + row pointers).
    pub fn footprint_words(&self) -> usize {
        2 * self.nnz() + self.n_rows as usize + 1
    }

    /// Mean number of non-zeros per row (`Nz / m`).
    pub fn mean_nnz_per_row(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n_rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> Coo {
        // 3x4 matrix:
        // [ 4 1 . . ]
        // [ 3 . . . ]
        // [ . . . 2 ]
        let mut c = Coo::new(3, 4);
        c.push(0, 1, 1.0).unwrap();
        c.push(2, 3, 2.0).unwrap();
        c.push(1, 0, 3.0).unwrap();
        c.push(0, 0, 4.0).unwrap();
        c
    }

    #[test]
    fn from_coo_builds_sorted_rows() {
        let csr = sample_coo().to_csr();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row_ptr(), &[0, 2, 3, 4]);
        assert_eq!(csr.row(0).0, &[0, 1]);
        assert_eq!(csr.row(0).1, &[4.0, 1.0]);
        assert_eq!(csr.nnz_row(1), 1);
        assert_eq!(csr.get(2, 3), Some(2.0));
        assert_eq!(csr.get(2, 0), None);
    }

    #[test]
    fn roundtrip_coo_csr_coo() {
        let mut original = sample_coo();
        original.sort();
        let mut back = original.to_csr().to_coo();
        back.sort();
        assert_eq!(original.entries(), back.entries());
    }

    #[test]
    fn transpose_is_involution() {
        let csr = sample_coo().to_csr();
        let tt = csr.transpose().transpose();
        assert_eq!(csr, tt);
    }

    #[test]
    fn transpose_moves_entries() {
        let t = sample_coo().to_csr().transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.get(3, 2), Some(2.0));
        assert_eq!(t.get(0, 0), Some(4.0));
        assert_eq!(t.get(1, 0), Some(1.0));
    }

    #[test]
    fn from_raw_validates_lengths() {
        assert!(Csr::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(Csr::from_raw(2, 2, vec![0, 1, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(Csr::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        assert!(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 2.0]).is_err());
        assert!(Csr::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn footprint_matches_table3_formula() {
        let csr = sample_coo().to_csr();
        assert_eq!(csr.footprint_words(), 2 * 4 + 3 + 1);
    }

    #[test]
    fn iter_visits_all_entries_in_row_major_order() {
        let csr = sample_coo().to_csr();
        let keys: Vec<(u32, u32)> = csr.iter().map(|e| (e.row, e.col)).collect();
        assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0), (2, 3)]);
    }

    #[test]
    fn mean_nnz_per_row() {
        let csr = sample_coo().to_csr();
        assert!((csr.mean_nnz_per_row() - 4.0 / 3.0).abs() < 1e-12);
    }
}

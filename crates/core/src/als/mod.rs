//! ALS engines: the numerical kernels shared by every engine, the baseline
//! reference (Algorithm 1), the memory-optimized single-GPU engine
//! (Algorithm 2, MO-ALS) and the scale-up multi-GPU engine (Algorithm 3,
//! SU-ALS).

pub mod base;
pub mod kernels;
pub mod mo;
pub mod su;

pub use base::BaseAls;
pub use mo::MoAlsEngine;
pub use su::{SuAlsConfig, SuAlsEngine};

//! Benchmark and reproduction harness for `cumf-rs`.
//!
//! This crate is the top of the dependency DAG: it pulls every other
//! `cumf-*` crate together and turns them into the paper's evaluation.
//!
//! * [`experiments`] — one function per table/figure of the cuMF paper
//!   ([`experiments::table1`], [`experiments::fig6`] … [`experiments::fig11`],
//!   plus the §4.2 [`experiments::reduction_ablation`] and §3.3
//!   [`experiments::bin_ablation`]).  Each returns structured data
//!   (convergence series, cost rows) rather than printing, so tests and
//!   future tooling can assert on the numbers.
//! * `src/bin/repro.rs` — the `repro` binary: prints any experiment (or
//!   `all`) as text tables; `--quick` shrinks the convergence runs for CI.
//! * `benches/` — criterion micro-benchmarks of the ALS kernels, the MO-ALS
//!   and SU-ALS engines, the CPU baselines, and end-to-end figure
//!   regeneration, on real (scaled-down) workloads.
//! * `examples/` — runnable walkthroughs of the public API: `quickstart`,
//!   `movie_recommender`, `multi_gpu_scaling`, `out_of_core_planning`.
//! * `tests/` — the workspace's end-to-end integration tests (full
//!   train/evaluate cycles and experiment smoke runs).
//!
//! Scaled-down convergence runs are *numerically real* (the solvers execute
//! on the host); wall-clock numbers at paper scale come from the analytic
//! cost models in `cumf-core` and `cumf-cluster`, priced with the simulated
//! hardware in `cumf-gpu-sim`.

#![forbid(unsafe_code)]
pub mod experiments;

pub use experiments::*;

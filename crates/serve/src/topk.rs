//! Batched top-k scoring against one snapshot.
//!
//! The training-time insight of the paper — batch many independent small
//! problems into one regular, blocked kernel — applied at serving time: a
//! micro-batch of user requests is scored as blocked matrix-vector products
//! ([`cumf_linalg::batch_score_block`]), so each item block is streamed from
//! memory once per *tile of users* instead of once per request.  Each user
//! folds block scores into a bounded heap ([`cumf_linalg::TopK`]), never
//! materializing the full score vector.

use crate::snapshot::FactorSnapshot;
use cumf_linalg::batch_score_block;
use cumf_linalg::TopK;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// How a candidate item is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreKind {
    /// Raw inner product `x_u · θ_v` (predicted rating).
    #[default]
    Dot,
    /// Inner product divided by `‖θ_v‖` — uses the snapshot's precomputed
    /// item norms to stop high-norm (popular) items from dominating every
    /// list.  The user-norm factor is constant per request and cannot
    /// change the ranking, so it is skipped.
    Cosine,
}

/// One top-k retrieval request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// User to recommend for.
    pub user: u32,
    /// Number of items wanted.
    pub k: usize,
    /// Items to exclude (typically the user's already-rated items).
    pub exclude: Vec<u32>,
}

impl Query {
    /// A query with no exclusions.
    pub fn new(user: u32, k: usize) -> Self {
        Self {
            user,
            k,
            exclude: Vec::new(),
        }
    }
}

/// Number of users scored together against each item block.  Eight user
/// vectors of `f ≤ 128` floats fit comfortably in L1 next to the item block.
const USER_TILE: usize = 8;

/// Batched blocked top-k scorer over one immutable snapshot.
///
/// All queries of a [`TopKIndex::query_batch`] call are answered from the
/// same snapshot generation — the index holds its own `Arc`, so a
/// concurrent hot-swap cannot tear a batch.
#[derive(Debug, Clone)]
pub struct TopKIndex {
    snapshot: Arc<FactorSnapshot>,
    item_block: usize,
    score: ScoreKind,
}

impl TopKIndex {
    /// Creates an index over `snapshot` scoring `item_block` items per
    /// block.
    pub fn new(snapshot: Arc<FactorSnapshot>, item_block: usize, score: ScoreKind) -> Self {
        assert!(item_block > 0, "item block must be positive");
        Self {
            snapshot,
            item_block,
            score,
        }
    }

    /// The snapshot this index serves from.
    pub fn snapshot(&self) -> &Arc<FactorSnapshot> {
        &self.snapshot
    }

    /// Scores a micro-batch of queries, returning one ranked
    /// `(item, score)` list per query, in query order.  Tiles of
    /// [`USER_TILE`] users are scored in parallel; within a tile every item
    /// block is scored for all users with one blocked kernel call.
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Vec<(u32, f32)>> {
        let tiles: Vec<Vec<Vec<(u32, f32)>>> = queries
            .par_chunks(USER_TILE)
            .map(|tile| self.score_tile(tile))
            .collect();
        tiles.into_iter().flatten().collect()
    }

    fn score_tile(&self, tile: &[Query]) -> Vec<Vec<(u32, f32)>> {
        let snap = &self.snapshot;
        let f = snap.rank();
        let n_items = snap.n_items();
        let theta = snap.item_factors().data();
        let norms = snap.item_norms();

        // Gather the tile's user vectors into one contiguous buffer so the
        // block scorer sees a dense (tile × f) operand.  Out-of-range users
        // keep a zero vector and are marked invalid.
        let mut users = vec![0.0f32; tile.len() * f];
        let mut valid = vec![false; tile.len()];
        for (i, q) in tile.iter().enumerate() {
            if let Some(x_u) = snap.user_vector(q.user) {
                users[i * f..(i + 1) * f].copy_from_slice(x_u);
                valid[i] = true;
            }
        }

        let mut heaps: Vec<Option<TopK>> = tile
            .iter()
            .zip(valid.iter())
            .map(|(q, &ok)| (ok && q.k > 0).then(|| TopK::new(q.k)))
            .collect();
        let excluded: Vec<HashSet<u32>> = tile
            .iter()
            .map(|q| q.exclude.iter().copied().collect())
            .collect();

        let block = self.item_block.min(n_items.max(1));
        let mut scores = vec![0.0f32; tile.len() * block];
        for start in (0..n_items).step_by(block) {
            let end = (start + block).min(n_items);
            let nb = end - start;
            let out = &mut scores[..tile.len() * nb];
            batch_score_block(&users, tile.len(), &theta[start * f..end * f], nb, f, out);
            for (i, heap) in heaps.iter_mut().enumerate() {
                let Some(heap) = heap else { continue };
                let row = &out[i * nb..(i + 1) * nb];
                for (j, &s) in row.iter().enumerate() {
                    let item = (start + j) as u32;
                    if excluded[i].contains(&item) {
                        continue;
                    }
                    let s = match self.score {
                        ScoreKind::Dot => s,
                        ScoreKind::Cosine => {
                            let n = norms[start + j];
                            if n > 0.0 {
                                s / n
                            } else {
                                continue;
                            }
                        }
                    };
                    heap.push(item, s);
                }
            }
        }

        heaps
            .into_iter()
            .map(|h| h.map(TopK::into_sorted_vec).unwrap_or_default())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_linalg::FactorMatrix;

    fn index(seed: u64, n_users: usize, n_items: usize, score: ScoreKind) -> TopKIndex {
        let snap = FactorSnapshot::from_factors(
            FactorMatrix::random(n_users, 8, 1.0, seed),
            FactorMatrix::random(n_items, 8, 1.0, seed + 1),
        );
        TopKIndex::new(Arc::new(snap), 64, score)
    }

    #[test]
    fn batch_matches_single_request_path() {
        let idx = index(7, 30, 500, ScoreKind::Dot);
        let queries: Vec<Query> = (0..30u32)
            .map(|u| Query {
                user: u,
                k: 5,
                exclude: vec![u % 11, u % 23],
            })
            .collect();
        let batched = idx.query_batch(&queries);
        assert_eq!(batched.len(), queries.len());
        for (q, got) in queries.iter().zip(batched.iter()) {
            let single = idx.snapshot().recommend_one(q.user, q.k, &q.exclude);
            assert_eq!(got, &single, "user {}", q.user);
        }
    }

    #[test]
    fn exclusions_and_invalid_users_are_handled() {
        let idx = index(9, 10, 100, ScoreKind::Dot);
        let queries = vec![
            Query {
                user: 0,
                k: 3,
                exclude: (0..97).collect(),
            },
            Query::new(9999, 3), // out of range
            Query {
                user: 1,
                k: 0,
                exclude: vec![],
            },
        ];
        let out = idx.query_batch(&queries);
        assert_eq!(out[0].len(), 3);
        assert!(out[0].iter().all(|(v, _)| *v >= 97));
        assert!(out[1].is_empty());
        assert!(out[2].is_empty());
    }

    #[test]
    fn cosine_divides_by_item_norm() {
        // Item 0 has a huge norm; under Dot it wins, under Cosine it ties
        // with the identically-directed item 1.
        let x = FactorMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let theta = FactorMatrix::from_vec(3, 2, vec![10.0, 0.0, 1.0, 0.0, 0.0, 5.0]);
        let snap = Arc::new(FactorSnapshot::from_factors(x, theta));
        let dot = TopKIndex::new(Arc::clone(&snap), 64, ScoreKind::Dot);
        let cos = TopKIndex::new(snap, 64, ScoreKind::Cosine);
        let q = vec![Query::new(0, 2)];
        assert_eq!(dot.query_batch(&q)[0], vec![(0, 10.0), (1, 1.0)]);
        // Cosine: items 0 and 1 both score 1.0; ties prefer small ids.
        assert_eq!(cos.query_batch(&q)[0], vec![(0, 1.0), (1, 1.0)]);
    }

    #[test]
    fn block_size_is_result_invariant() {
        let snap = Arc::new(FactorSnapshot::from_factors(
            FactorMatrix::random(5, 4, 1.0, 3),
            FactorMatrix::random(777, 4, 1.0, 4),
        ));
        let q: Vec<Query> = (0..5u32).map(|u| Query::new(u, 9)).collect();
        let small = TopKIndex::new(Arc::clone(&snap), 3, ScoreKind::Dot).query_batch(&q);
        let large = TopKIndex::new(snap, 10_000, ScoreKind::Dot).query_batch(&q);
        assert_eq!(small, large);
    }
}

//! Micro-benchmarks of the ALS kernels (the building blocks of Table 3):
//! the fused `get_hermitian` + solve, the partial-Hermitian path of SU-ALS,
//! the batched Cholesky solve and the cross-partition accumulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cumf_core::als::kernels::{accumulate_partials, partial_hermitians, solve_side};
use cumf_data::synth::SyntheticConfig;
use cumf_linalg::blas::{add_diagonal, axpy, syr_axpy, syr_full};
use cumf_linalg::{batch_solve, FactorMatrix};
use cumf_sparse::Csr;
use std::hint::black_box;

fn workload(m: u32, n: u32, nnz: usize) -> (Csr, FactorMatrix) {
    let data = SyntheticConfig {
        m,
        n,
        nnz,
        rank: 8,
        seed: 7,
        ..Default::default()
    }
    .generate();
    let r = data.to_csr();
    let theta = FactorMatrix::random(n as usize, 32, 0.2, 3);
    (r, theta)
}

fn bench_get_hermitian(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_hermitian_solve");
    group.sample_size(10);
    for &nnz in &[20_000usize, 80_000] {
        let (r, theta) = workload(2_000, 500, nnz);
        // One iteration processes every stored rating once.
        group.throughput(Throughput::Elements(r.nnz() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nnz), &nnz, |b, _| {
            b.iter(|| black_box(solve_side(&r, &theta, 0.05)));
        });
    }
    group.finish();
}

/// Scalar `syr_full` + `axpy` against the fused 4-lane `syr_axpy` on the
/// identical assembly stream — the per-rating body of `get_hermitian`,
/// isolated from the Cholesky solve.  The two produce bit-identical
/// Hermitians (pinned in cumf-core); this rung prices the vectorization win
/// on its own.
fn bench_hermitian_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("hermitian_assembly");
    let f = 32usize;
    let updates = 4_096usize;
    let vectors = FactorMatrix::random(updates, f, 0.5, 17);
    let vals: Vec<f32> = (0..updates).map(|i| 0.1 + (i % 5) as f32).collect();
    group.throughput(Throughput::Elements(updates as u64));
    group.bench_function("scalar_syr_full_axpy_f32", |b| {
        b.iter(|| {
            let mut a = vec![0.0f32; f * f];
            let mut rhs = vec![0.0f32; f];
            for (i, &val) in vals.iter().enumerate() {
                let x = vectors.vector(i);
                syr_full(&mut a, x);
                axpy(val, x, &mut rhs);
            }
            black_box((a, rhs))
        });
    });
    group.bench_function("fused_syr_axpy_f32", |b| {
        b.iter(|| {
            let mut a = vec![0.0f32; f * f];
            let mut rhs = vec![0.0f32; f];
            for (i, &val) in vals.iter().enumerate() {
                syr_axpy(&mut a, &mut rhs, vectors.vector(i), val);
            }
            black_box((a, rhs))
        });
    });
    group.finish();
}

fn bench_partial_hermitians(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_hermitians");
    group.sample_size(10);
    let (r, theta) = workload(1_000, 400, 40_000);
    group.throughput(Throughput::Elements(r.nnz() as u64));
    group.bench_function("1000x400_40k_f32", |b| {
        b.iter(|| black_box(partial_hermitians(&r, &theta, 32)));
    });
    group.finish();
}

fn bench_accumulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_accumulate");
    group.sample_size(20);
    let f = 32usize;
    let rows = 2_000usize;
    let a_src = vec![1.0f32; rows * f * f];
    let b_src = vec![1.0f32; rows * f];
    // Bytes read from both partial buffers plus written to the accumulators.
    group.throughput(Throughput::Bytes(
        2 * 4 * (a_src.len() + b_src.len()) as u64,
    ));
    group.bench_function("2000_rows_f32", |b| {
        let mut a_dst = vec![0.0f32; rows * f * f];
        let mut b_dst = vec![0.0f32; rows * f];
        b.iter(|| {
            accumulate_partials(&mut a_dst, &mut b_dst, &a_src, &b_src);
            black_box(&a_dst);
        });
    });
    group.finish();
}

fn bench_batch_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_solve");
    group.sample_size(10);
    for &f in &[16usize, 32, 64] {
        let batch = 1_000usize;
        // Build SPD systems once; clone per iteration inside the timing loop.
        let mut hermitians = vec![0.0f32; batch * f * f];
        let gen = FactorMatrix::random(batch * 2, f, 1.0, 11);
        for i in 0..batch {
            let a = &mut hermitians[i * f * f..(i + 1) * f * f];
            syr_full(a, gen.vector(2 * i));
            syr_full(a, gen.vector(2 * i + 1));
            add_diagonal(a, f, 0.5);
        }
        let rhs = vec![1.0f32; batch * f];
        // One iteration solves `batch` independent SPD systems.
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("1000_systems_f", f), &f, |b, &f| {
            b.iter(|| {
                let mut a = hermitians.clone();
                let mut x = rhs.clone();
                black_box(batch_solve(&mut a, &mut x, f));
            });
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_get_hermitian,
    bench_hermitian_assembly,
    bench_partial_hermitians,
    bench_accumulate,
    bench_batch_solve
);
criterion_main!(kernels);

//! Clean-fixture shim: surface matches SURFACE.txt exactly.
pub fn stable() {}

pub(crate) fn hidden_helper() {}

//! Batched Hermitian solves — the CPU stand-in for cuBLAS's batched
//! POTRF/POTRS used by the paper's `batch_solve` phase.
//!
//! Each of the `m_b` systems in a batch is independent, which is exactly the
//! property the paper exploits to fill the GPU with thread blocks; here the
//! same independence is exploited with rayon's work-stealing threads.

use crate::cholesky::{cholesky_solve, CholeskyError};
use rayon::prelude::*;

/// Result of a batched solve: per-system error positions (empty when all
/// systems succeeded).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchSolveReport {
    /// Indices of systems whose Hermitian matrix was not positive definite.
    pub failed: Vec<usize>,
    /// Number of systems solved.
    pub solved: usize,
}

impl BatchSolveReport {
    /// True when every system in the batch solved successfully.
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Solves `batch` independent `f × f` SPD systems in parallel.
///
/// * `hermitians` — concatenated row-major `A_u` matrices, `batch · f²` long;
///   overwritten with their Cholesky factors.
/// * `rhs` — concatenated right-hand sides `B_u`, `batch · f` long;
///   overwritten with the solutions `x_u`.
///
/// Systems that fail to factor (non-SPD, which for ALS can only happen with
/// `λ = 0` and an empty row) leave their right-hand side untouched and are
/// reported in the returned [`BatchSolveReport`].
pub fn batch_solve(hermitians: &mut [f32], rhs: &mut [f32], f: usize) -> BatchSolveReport {
    assert!(f > 0, "latent dimension must be positive");
    assert_eq!(
        hermitians.len() % (f * f),
        0,
        "hermitian buffer not a multiple of f*f"
    );
    assert_eq!(rhs.len() % f, 0, "rhs buffer not a multiple of f");
    let batch = hermitians.len() / (f * f);
    assert_eq!(rhs.len() / f, batch, "hermitian and rhs batch sizes differ");

    let results: Vec<Result<(), CholeskyError>> = hermitians
        .par_chunks_mut(f * f)
        .zip(rhs.par_chunks_mut(f))
        .map(|(a, b)| cholesky_solve(a, f, b))
        .collect();

    let failed: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_err().then_some(i))
        .collect();
    BatchSolveReport {
        solved: batch - failed.len(),
        failed,
    }
}

/// Scores a micro-batch of user vectors against a block of item vectors —
/// the retrieval-time counterpart of the training-time batched GEMM: the
/// same item block is reused across every user in the batch, which is the
/// cache (and, on a GPU, shared-memory) win batched serving exploits.
///
/// * `users` — `n_users` row-major user vectors, `n_users · f` long.
/// * `items` — `n_items` row-major item vectors, `n_items · f` long.
/// * `out` — `n_users · n_items` scores, written as
///   `out[i · n_items + j] = users[i] · items[j]`.
///
/// The loop order (item-major inner loop per user) streams each item block
/// once per user while the user vector stays register/L1-resident.  Scores
/// accumulate in `f32` with four independent lanes — retrieval ranks item
/// scores against each other, so the f64 accumulation [`crate::blas::dot`]
/// uses for the ill-conditioned Hermitian assembly is unnecessary here, and
/// the independent lanes let the compiler keep the FMA pipeline full.
pub fn batch_score_block(
    users: &[f32],
    n_users: usize,
    items: &[f32],
    n_items: usize,
    f: usize,
    out: &mut [f32],
) {
    assert!(f > 0, "latent dimension must be positive");
    assert_eq!(users.len(), n_users * f, "user buffer size mismatch");
    assert_eq!(items.len(), n_items * f, "item buffer size mismatch");
    assert_eq!(out.len(), n_users * n_items, "score buffer size mismatch");
    for (i, x_u) in users.chunks_exact(f).enumerate() {
        let row = &mut out[i * n_items..(i + 1) * n_items];
        for (s, theta_v) in row.iter_mut().zip(items.chunks_exact(f)) {
            *s = score_dot(x_u, theta_v);
        }
    }
}

/// Four-lane `f32` dot product for retrieval scoring.
#[inline]
fn score_dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let (x4, x_tail) = x.split_at(x.len() & !3);
    let (y4, y_tail) = y.split_at(x4.len());
    for (xc, yc) in x4.chunks_exact(4).zip(y4.chunks_exact(4)) {
        acc[0] += xc[0] * yc[0];
        acc[1] += xc[1] * yc[1];
        acc[2] += xc[2] * yc[2];
        acc[3] += xc[3] * yc[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (a, b) in x_tail.iter().zip(y_tail.iter()) {
        s += a * b;
    }
    s
}

/// Sequential reference implementation of [`batch_solve`], used by tests to
/// check that parallel execution does not change results.
pub fn batch_solve_seq(hermitians: &mut [f32], rhs: &mut [f32], f: usize) -> BatchSolveReport {
    let batch = hermitians.len() / (f * f);
    let mut failed = Vec::new();
    for i in 0..batch {
        let a = &mut hermitians[i * f * f..(i + 1) * f * f];
        let b = &mut rhs[i * f..(i + 1) * f];
        if cholesky_solve(a, f, b).is_err() {
            failed.push(i);
        }
    }
    BatchSolveReport {
        solved: batch - failed.len(),
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{add_diagonal, syr_full};
    use crate::cholesky::residual_norm;
    use crate::FactorMatrix;

    use rand::prelude::*;

    fn random_batch(batch: usize, f: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hermitians = vec![0.0f32; batch * f * f];
        let mut rhs = vec![0.0f32; batch * f];
        for i in 0..batch {
            let a = &mut hermitians[i * f * f..(i + 1) * f * f];
            for _ in 0..(2 * f) {
                let x: Vec<f32> = (0..f).map(|_| rng.random::<f32>() - 0.5).collect();
                syr_full(a, &x);
            }
            add_diagonal(a, f, 0.2);
            for b in rhs[i * f..(i + 1) * f].iter_mut() {
                *b = rng.random::<f32>() - 0.5;
            }
        }
        (hermitians, rhs)
    }

    #[test]
    fn solves_a_batch_with_small_residuals() {
        let (orig_a, orig_b) = random_batch(32, 12, 3);
        let mut a = orig_a.clone();
        let mut b = orig_b.clone();
        let report = batch_solve(&mut a, &mut b, 12);
        assert!(report.all_ok());
        assert_eq!(report.solved, 32);
        for i in 0..32 {
            let res = residual_norm(
                &orig_a[i * 144..(i + 1) * 144],
                12,
                &b[i * 12..(i + 1) * 12],
                &orig_b[i * 12..(i + 1) * 12],
            );
            assert!(res < 1e-3, "system {i} residual {res}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (a0, b0) = random_batch(64, 8, 11);
        let (mut a1, mut b1) = (a0.clone(), b0.clone());
        let (mut a2, mut b2) = (a0, b0);
        let r1 = batch_solve(&mut a1, &mut b1, 8);
        let r2 = batch_solve_seq(&mut a2, &mut b2, 8);
        assert_eq!(r1, r2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn reports_failed_systems_and_leaves_rhs() {
        let f = 4;
        // Two systems: first is identity (fine), second is all zeros (fails).
        let mut a = vec![0.0f32; 2 * f * f];
        add_diagonal(&mut a[..f * f], f, 1.0);
        let mut b = vec![1.0f32; 2 * f];
        let report = batch_solve(&mut a, &mut b, f);
        assert_eq!(report.failed, vec![1]);
        assert_eq!(report.solved, 1);
        assert!(!report.all_ok());
        // Failed system's rhs is untouched (still all ones).
        assert!(b[f..].iter().all(|&x| x == 1.0));
    }

    #[test]
    fn empty_batch_is_ok() {
        let mut a: Vec<f32> = vec![];
        let mut b: Vec<f32> = vec![];
        let report = batch_solve(&mut a, &mut b, 5);
        assert!(report.all_ok());
        assert_eq!(report.solved, 0);
    }

    #[test]
    fn score_block_matches_per_pair_dots() {
        use crate::blas::dot;
        let f = 6; // not a multiple of 4: exercises the unroll tail
        let users = FactorMatrix::random(4, f, 1.0, 21);
        let items = FactorMatrix::random(9, f, 1.0, 22);
        let mut out = vec![0.0f32; 4 * 9];
        batch_score_block(users.data(), 4, items.data(), 9, f, &mut out);
        for u in 0..4 {
            for v in 0..9 {
                let expect = dot(users.vector(u), items.vector(v));
                let got = out[u * 9 + v];
                // The scoring kernel re-associates the f32 sum; equality up
                // to a few ulps of the f64-accumulated reference.
                assert!(
                    (got - expect).abs() <= 1e-5 * (1.0 + expect.abs()),
                    "score ({u}, {v}): {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn score_block_empty_items_is_ok() {
        let mut out = vec![];
        batch_score_block(&[1.0, 2.0], 1, &[], 0, 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "score buffer size mismatch")]
    fn score_block_rejects_bad_output_len() {
        let mut out = vec![0.0f32; 3];
        batch_score_block(&[1.0, 2.0], 1, &[1.0, 2.0], 1, 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn mismatched_buffers_panic() {
        let mut a = vec![0.0f32; 10];
        let mut b = vec![0.0f32; 3];
        batch_solve(&mut a, &mut b, 3);
    }
}

//! Error type for sparse matrix construction and partitioning.

use std::fmt;

/// Errors returned by sparse-matrix constructors and partitioners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row index is out of the declared row range.
    RowOutOfBounds { row: u32, n_rows: u32 },
    /// An entry's column index is out of the declared column range.
    ColOutOfBounds { col: u32, n_cols: u32 },
    /// A structural array has an inconsistent length (e.g. `row_ptr` not
    /// `n_rows + 1` long, or `col_idx` and `values` lengths differing).
    InconsistentLength {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// A pointer array is not monotonically non-decreasing.
    NonMonotonicPtr { at: usize },
    /// A partition request is degenerate (zero parts, or more parts than rows/cols).
    InvalidPartition { requested: usize, available: usize },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::RowOutOfBounds { row, n_rows } => {
                write!(f, "row index {row} out of bounds for {n_rows} rows")
            }
            SparseError::ColOutOfBounds { col, n_cols } => {
                write!(f, "column index {col} out of bounds for {n_cols} columns")
            }
            SparseError::InconsistentLength {
                what,
                expected,
                got,
            } => {
                write!(
                    f,
                    "inconsistent length for {what}: expected {expected}, got {got}"
                )
            }
            SparseError::NonMonotonicPtr { at } => {
                write!(f, "pointer array decreases at position {at}")
            }
            SparseError::InvalidPartition {
                requested,
                available,
            } => {
                write!(
                    f,
                    "invalid partition: requested {requested} parts over {available} elements"
                )
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::RowOutOfBounds { row: 7, n_rows: 5 };
        assert!(e.to_string().contains("row index 7"));
        let e = SparseError::ColOutOfBounds { col: 9, n_cols: 3 };
        assert!(e.to_string().contains("column index 9"));
        let e = SparseError::InconsistentLength {
            what: "row_ptr",
            expected: 6,
            got: 5,
        };
        assert!(e.to_string().contains("row_ptr"));
        let e = SparseError::NonMonotonicPtr { at: 2 };
        assert!(e.to_string().contains("position 2"));
        let e = SparseError::InvalidPartition {
            requested: 0,
            available: 10,
        };
        assert!(e.to_string().contains("0 parts"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<SparseError>();
    }
}

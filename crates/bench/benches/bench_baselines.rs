//! CPU baseline benchmarks: one epoch/iteration of every baseline solver on
//! the same workload — the wall-clock companion of the CPU curves in
//! Figures 6 and 10, and a direct libMF-vs-NOMAD-vs-ALS progress-per-second
//! comparison on the host.

use criterion::{criterion_group, criterion_main, Criterion};
use cumf_baselines::ccd::CcdConfig;
use cumf_baselines::hogwild::HogwildConfig;
use cumf_baselines::libmf::LibMfConfig;
use cumf_baselines::nomad::NomadConfig;
use cumf_baselines::pals::PalsConfig;
use cumf_baselines::spark_als::SparkAlsConfig;
use cumf_baselines::{CcdPlusPlus, Engine, HogwildSgd, LibMfSgd, NomadSgd, Pals, SparkAlsStyle};
use cumf_data::synth::SyntheticConfig;
use cumf_sparse::Csr;
use std::hint::black_box;

fn ratings() -> Csr {
    SyntheticConfig {
        m: 3_000,
        n: 800,
        nnz: 120_000,
        rank: 8,
        seed: 9,
        ..Default::default()
    }
    .generate()
    .to_csr()
}

fn bench_sgd_baselines(c: &mut Criterion) {
    let r = ratings();
    let mut group = c.benchmark_group("fig6_cpu_baselines_epoch");
    group.sample_size(10);
    group.bench_function("libmf_blocked_sgd", |b| {
        b.iter(|| {
            let mut s = LibMfSgd::new(
                LibMfConfig {
                    f: 32,
                    threads: 4,
                    ..Default::default()
                },
                &r,
            );
            s.train_sweep();
            black_box(s.x().data()[0]);
        });
    });
    group.bench_function("hogwild_sgd", |b| {
        b.iter(|| {
            let mut s = HogwildSgd::new(
                HogwildConfig {
                    f: 32,
                    ..Default::default()
                },
                &r,
            );
            s.train_sweep();
            black_box(s.x().data()[0]);
        });
    });
    group.bench_function("nomad_async_sgd", |b| {
        b.iter(|| {
            let mut s = NomadSgd::new(
                NomadConfig {
                    f: 32,
                    workers: 4,
                    ..Default::default()
                },
                &r,
            );
            s.train_sweep();
            black_box(s.x().data()[0]);
        });
    });
    group.finish();
}

fn bench_als_baselines(c: &mut Criterion) {
    let r = ratings();
    let mut group = c.benchmark_group("fig10_als_baselines_iteration");
    group.sample_size(10);
    group.bench_function("pals_full_replication", |b| {
        b.iter(|| {
            let mut s = Pals::new(
                PalsConfig {
                    f: 32,
                    workers: 4,
                    ..Default::default()
                },
                &r,
            );
            s.train_sweep();
            black_box(s.x().data()[0]);
        });
    });
    group.bench_function("spark_als_partial_replication", |b| {
        b.iter(|| {
            let mut s = SparkAlsStyle::new(
                SparkAlsConfig {
                    f: 32,
                    partitions: 4,
                    ..Default::default()
                },
                &r,
            );
            s.train_sweep();
            black_box(s.last_shuffle().bytes_shipped);
        });
    });
    group.bench_function("ccd_plus_plus_sweep", |b| {
        b.iter(|| {
            let mut s = CcdPlusPlus::new(
                CcdConfig {
                    f: 32,
                    ..Default::default()
                },
                &r,
            );
            s.train_sweep();
            black_box(s.residual_rmse());
        });
    });
    group.finish();
}

criterion_group!(baselines, bench_sgd_baselines, bench_als_baselines);
criterion_main!(baselines);

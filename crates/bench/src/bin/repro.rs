//! `repro` — regenerates every table and figure of the cuMF paper.
//!
//! Usage:
//! ```text
//! repro <experiment> [--quick]
//!
//! experiments:
//!   table1      speed & cost vs NOMAD / SparkALS / Factorbird
//!   table3      analytic compute cost & memory footprint (update-X)
//!   table4      programmable GPU memory characteristics
//!   table5      data set descriptors
//!   fig2        scale of MF data sets
//!   fig6        convergence: cuMF vs NOMAD vs libMF (Netflix, YahooMusic)
//!   fig7        register-memory ablation
//!   fig8        texture-memory ablation
//!   fig9        multi-GPU scalability
//!   fig10       Hugewiki: cuMF@4GPU vs multi-node NOMAD
//!   fig11       very large data sets: per-iteration time vs original systems
//!   reduction   §4.2 parallel-reduction ablation
//!   bin         §3.3 shared-memory bin-size ablation
//!   all         everything above
//! ```
//!
//! `--quick` shrinks the convergence runs (used by CI / smoke tests).

use cumf_bench::experiments as exp;
use cumf_bench::experiments::ExperimentConfig;

const USAGE: &str = "\
repro — regenerates every table and figure of the cuMF paper

usage: repro [experiment] [--quick]

experiments:
  table1      speed & cost vs NOMAD / SparkALS / Factorbird
  table3      analytic compute cost & memory footprint (update-X)
  table4      programmable GPU memory characteristics
  table5      data set descriptors
  fig2        scale of MF data sets
  fig6        convergence: cuMF vs NOMAD vs libMF (Netflix, YahooMusic)
  fig7        register-memory ablation
  fig8        texture-memory ablation
  fig9        multi-GPU scalability
  fig10       Hugewiki: cuMF@4GPU vs multi-node NOMAD
  fig11       very large data sets: per-iteration time vs original systems
  reduction   §4.2 parallel-reduction ablation
  bin         §3.3 shared-memory bin-size ablation
  all         everything above (the default)

flags:
  --quick     shrink the convergence runs (used by CI / smoke tests)
  -h, --help  print this help";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };

    let known = [
        "table1",
        "table3",
        "table4",
        "table5",
        "fig2",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "reduction",
        "bin",
        "all",
    ];
    if !known.contains(&which.as_str()) {
        eprintln!("unknown experiment '{which}'; known: {}", known.join(", "));
        std::process::exit(2);
    }

    let run = |name: &str| which == "all" || which == name;

    if run("table5") {
        print_table5();
    }
    if run("fig2") {
        print_fig2();
    }
    if run("table4") {
        print_table4();
    }
    if run("table3") {
        print_table3();
    }
    if run("fig6") {
        print_figures(
            "Figure 6: cuMF (1 GPU) vs NOMAD and libMF (30 cores)",
            &exp::fig6(&cfg),
        );
    }
    if run("fig7") {
        print_figures(
            "Figure 7: convergence with / without register accumulation",
            &exp::fig7(&cfg),
        );
    }
    if run("fig8") {
        print_figures(
            "Figure 8: convergence with / without texture memory",
            &exp::fig8(&cfg),
        );
    }
    if run("fig9") {
        print_figures("Figure 9: convergence on 1 / 2 / 4 GPUs", &exp::fig9(&cfg));
        print_fig9_speedups();
    }
    if run("fig10") {
        print_figures(
            "Figure 10: Hugewiki — cuMF@4GPU vs multi-node NOMAD",
            &[exp::fig10(&cfg)],
        );
    }
    if run("fig11") {
        print_fig11();
    }
    if run("table1") {
        print_table1();
    }
    if run("reduction") {
        print_reduction();
    }
    if run("bin") {
        print_bin();
    }
}

fn hr(title: &str) {
    println!("\n===============================================================================");
    println!("{title}");
    println!("===============================================================================");
}

fn print_table5() {
    hr("Table 5: data sets");
    println!(
        "{:<15} {:>13} {:>12} {:>15} {:>5} {:>6}",
        "name", "m", "n", "Nz", "f", "lambda"
    );
    for d in exp::table5() {
        println!(
            "{:<15} {:>13} {:>12} {:>15} {:>5} {:>6.2}",
            d.name, d.m, d.n, d.nz, d.f, d.lambda
        );
    }
}

fn print_fig2() {
    hr("Figure 2: the scale of MF data sets (model parameters vs ratings)");
    println!(
        "{:<15} {:>20} {:>16}",
        "name", "(m+n)*f parameters", "Nz ratings"
    );
    for p in exp::fig2() {
        println!("{:<15} {:>20} {:>16}", p.name, p.model_parameters, p.nz);
    }
}

fn print_table4() {
    hr("Table 4: programmable GPU memory");
    println!("{:<10} {:<8} {:<8} scope", "memory", "size", "latency");
    for row in exp::table4() {
        println!(
            "{:<10} {:<8} {:<8} {}",
            format!("{:?}", row.kind),
            row.size,
            row.latency,
            row.scope
        );
    }
}

fn print_table3() {
    hr("Table 3: compute cost and memory footprint of the update-X step (Netflix, f = 100, m_b = 4096)");
    println!(
        "{:<14} {:>18} {:>18} {:>16} {:>18} {:>18}",
        "scope", "A flops", "B flops", "A words", "B words", "batch-solve flops"
    );
    for row in exp::table3_for(cumf_data::datasets::PaperDataset::Netflix, 4096) {
        println!(
            "{:<14} {:>18.3e} {:>18.3e} {:>16.3e} {:>18.3e} {:>18.3e}",
            row.scope,
            row.get_hermitian_a_flops,
            row.get_hermitian_b_flops,
            row.a_words,
            row.b_words,
            row.batch_solve_flops
        );
    }
}

fn print_figures(title: &str, figures: &[exp::Figure]) {
    hr(title);
    for fig in figures {
        println!("\n--- {} ---", fig.title);
        for series in &fig.series {
            println!("  series: {}", series.label);
            println!("    {:>12} | {:>10}", "time (s)", "test RMSE");
            for p in &series.points {
                println!("    {:>12.2} | {:>10.4}", p.time_s, p.rmse);
            }
        }
        // A compact "who reaches the best common RMSE first" summary.
        let best_common = fig
            .series
            .iter()
            .map(|s| s.final_rmse())
            .fold(f64::NEG_INFINITY, f64::max);
        println!("  time to reach RMSE {best_common:.4}:");
        for series in &fig.series {
            match series.time_to_rmse(best_common + 1e-9) {
                Some(t) => println!("    {:<28} {:>10.1} s", series.label, t),
                None => println!("    {:<28} {:>10}", series.label, "not reached"),
            }
        }
    }
}

fn print_fig9_speedups() {
    println!("\nper-iteration speedups (full-scale cost model):");
    for ds in [
        cumf_data::datasets::PaperDataset::Netflix,
        cumf_data::datasets::PaperDataset::YahooMusic,
    ] {
        let speedups = exp::fig9_speedups(ds);
        let s: Vec<String> = speedups
            .iter()
            .map(|(g, s)| format!("{g} GPU = {s:.2}x"))
            .collect();
        println!("  {:<12} {}", ds.spec().name, s.join(", "));
    }
}

fn print_fig11() {
    hr("Figure 11: cuMF@4GPU on very large data sets vs the original systems (seconds / iteration)");
    println!(
        "{:<16} {:<28} {:>14} {:>14} {:>12} {:>14}",
        "workload", "baseline", "baseline model", "baseline publ.", "cuMF model", "cuMF (paper)"
    );
    for row in exp::fig11() {
        println!(
            "{:<16} {:<28} {:>12.1} s {:>12} {:>10.1} s {:>12.1} s",
            row.workload,
            row.baseline.name(),
            row.baseline_model_s,
            row.baseline_published_s
                .map(|s| format!("{s:.0} s"))
                .unwrap_or_else(|| "-".into()),
            row.cumf_s,
            row.cumf_published_s,
        );
    }
}

fn print_table1() {
    hr("Table 1: speed and cost of cuMF vs distributed CPU systems");
    println!(
        "{:<12} {:<12} {:>7} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "baseline", "node", "#nodes", "$/node/hr", "speedup", "base $", "cuMF $", "cuMF cost"
    );
    for row in exp::table1() {
        println!(
            "{:<12} {:<12} {:>7} {:>10.2} {:>11.1}x {:>10.2} {:>12.3} {:>9.1}%",
            row.baseline_name,
            row.baseline_node,
            row.baseline_nodes,
            row.baseline_price_per_hour,
            row.speedup(),
            row.baseline_cost(),
            row.cumf_cost(),
            100.0 * row.cost_fraction()
        );
    }
}

fn print_reduction() {
    hr("§4.2 ablation: parallel reduction schemes (Hugewiki batch, 4 GPUs)");
    println!("{:<28} {:<12} {:>12}", "scheme", "topology", "seconds");
    let rows = exp::reduction_ablation();
    for row in &rows {
        println!(
            "{:<28} {:<12} {:>12.4}",
            row.scheme, row.topology, row.seconds
        );
    }
    let single = rows[0].seconds;
    let one_flat = rows[1].seconds;
    let one_dual = rows[2].seconds;
    let two_dual = rows[3].seconds;
    println!(
        "\none-phase vs reduce-on-one-GPU: {:.2}x (paper: 1.7x)",
        single / one_flat
    );
    println!(
        "two-phase vs one-phase (dual socket): {:.2}x (paper: 1.5x)",
        one_dual / two_dual
    );
}

fn print_bin() {
    hr("§3.3 ablation: shared-memory bin size (Netflix, f = 100)");
    println!("{:<6} {:>11} {:>16}", "bin", "occupancy", "iteration (s)");
    for row in exp::bin_ablation() {
        println!(
            "{:<6} {:>10.3} {:>15.3}",
            row.bin, row.occupancy, row.iteration_s
        );
    }
}

//! CLI entry point for the workspace concurrency lint.
//!
//! ```text
//! cargo run -p cumf-check --bin lint                    # lint the tree
//! cargo run -p cumf-check --bin lint -- --root <path>   # lint another root
//! cargo run -p cumf-check --bin lint -- --update-surface
//! ```
//!
//! Exits 0 when the tree is clean (no unbaselined findings, no stale
//! baseline entries), 1 otherwise, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update_surface = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--update-surface" => update_surface = true,
            "-h" | "--help" => {
                println!(
                    "usage: lint [--root <workspace-root>] [--update-surface]\n\n\
                     Source-level concurrency lint for the cumf workspace.\n\
                     See `cumf_check` crate docs for the rule table."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(cumf_check::default_root);

    if update_surface {
        return match cumf_check::update_surfaces(&root) {
            Ok(written) => {
                for p in &written {
                    println!("wrote {}", p.display());
                }
                println!("{} SURFACE.txt files regenerated", written.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to write SURFACE.txt: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let report = cumf_check::run(&root);
    for f in report.unbaselined.iter().chain(&report.stale) {
        println!("{f}\n");
    }
    println!(
        "cumf-check: {} findings ({} baselined, {} unbaselined, {} stale baseline entries)",
        report.total,
        report.baselined,
        report.unbaselined.len(),
        report.stale.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Compressed item-factor storage: software f16 and per-block i8 codecs.
//!
//! Top-k scoring at catalog scale is memory-bandwidth-bound — every query
//! streams the surviving item blocks through the four-lane kernel, so
//! bytes-per-query sets the throughput ceiling, not FLOPs.  This module
//! stores a factor slab at reduced precision and decodes it tile-by-tile
//! into an f32 scratch buffer right before scoring, halving (f16) or
//! quartering (i8) the bytes moved per scanned block while the arithmetic
//! stays in f32 with the exact same four-lane structure.
//!
//! Two codecs:
//!
//! * **F16** — IEEE 754 binary16, encoded/decoded in software (no external
//!   crates, no unsafe).  Round-to-nearest-even; relative error per
//!   coefficient is at most [`F16_REL_ERR`] `= 2⁻¹¹` for normal values,
//!   plus an absolute [`F16_SUBNORMAL_ABS`] `= 2⁻²⁵` once a value falls
//!   into the subnormal range.  Values beyond ±65504 saturate to ±∞ (factor
//!   entries never get there in practice; the error bound is still honest
//!   because ∞ only widens the decoded norm).
//! * **I8** — linear quantization with one f32 scale per `quant_block` rows
//!   (aligned with the per-block max-norm tables the pruning path already
//!   keeps): `scale = max|x| / 127`, `code = round(x / scale)` clamped to
//!   `[-127, 127]`, `decode = code · scale`.  Per-coefficient error is at
//!   most `scale / 2`.
//!
//! The per-block **row error bound** ([`EncodedSlab::err_bound`]) converts
//! the per-coefficient bounds into an L2 bound on `‖decode(θ_v) − θ_v‖` for
//! any row of a block.  Callers fold it into the Cauchy–Schwarz pruning
//! bound exactly the way [`crate::topk::NORM_BOUND_SLACK`] already absorbs
//! f32 rounding: a block is skipped only when even
//! `‖x_u‖·(block_max[b] + err_b)` cannot reach the heap threshold, so
//! pruning stays admissible with respect to the **exact** scores, not just
//! the decoded ones.  The residual gap (a decoded score may rank candidates
//! slightly differently) is what the serving layer's exact-f32 rerank with
//! over-fetch absorbs.

use crate::batch::batch_score_block;

/// Storage precision of one item-factor segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Exact f32 rows — the uncompressed baseline; scans are bit-identical
    /// to the pre-quantization path.
    #[default]
    F32,
    /// Software IEEE 754 binary16: 2 bytes per coefficient.
    F16,
    /// Linearly quantized signed bytes with per-block scales: 1 byte per
    /// coefficient plus 4 bytes per scale block.
    I8,
}

impl Precision {
    /// Stable one-byte discriminator (cache keys, wire formats).
    pub fn code(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::F16 => 1,
            Precision::I8 => 2,
        }
    }

    /// Human-readable name, matching [`Precision::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::I8 => "i8",
        }
    }

    /// Parses `"f32"`, `"f16"`, or `"i8"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Some(Precision::F32),
            "f16" => Some(Precision::F16),
            "i8" => Some(Precision::I8),
            _ => None,
        }
    }

    /// Bytes each coefficient occupies in the encoded slab (scales not
    /// included; see [`EncodedSlab::scan_bytes`] for the full accounting).
    pub fn bytes_per_coeff(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F16 => 2,
            Precision::I8 => 1,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Largest relative rounding error of round-to-nearest f32→f16 for values
/// in the normal range: `2⁻¹¹` (half a ulp of the 10-bit significand).
pub const F16_REL_ERR: f32 = 4.882_812_5e-4;

/// Largest absolute rounding error once a value falls below the smallest
/// normal f16 (`2⁻¹⁴`): half the subnormal spacing, `2⁻²⁵`.
pub const F16_SUBNORMAL_ABS: f32 = 2.980_232_2e-8;

/// Encodes one f32 as IEEE 754 binary16 bits, round-to-nearest-even.
/// Overflow saturates to ±infinity; NaN payloads collapse to a quiet NaN.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16; // quant-ok: top 16 bits only, sign survives the narrowing
    let exp = ((bits >> 23) & 0xff) as i32; // quant-ok: 8-bit exponent fits i32 exactly
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Infinity or NaN: keep the class, quiet any NaN.
        return if man == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00
        };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal half: rebase the exponent, round the 13 dropped bits to
        // nearest-even.  A rounding carry ripples into the exponent field
        // correctly (1.111… rounds up to the next power of two, and the
        // largest normal rounds to +inf).
        let half_exp = (unbiased + 15) as u32; // quant-ok: 1..=30 after the range checks above
        let mut half = (half_exp << 10) | (man >> 13);
        let round = man & 0x1fff;
        if round > 0x1000 || (round == 0x1000 && (half & 1) == 1) {
            half += 1;
        }
        return sign | half as u16; // quant-ok: half ≤ 0x7c00 after a full carry, fits u16
    }
    if unbiased >= -25 {
        // Subnormal half: shift the full significand (implicit bit
        // restored) into the 10-bit field, round-to-nearest-even.
        let mant = man | 0x0080_0000;
        let shift = (13 + (-14 - unbiased)) as u32; // quant-ok: 14..=24 given -25 ≤ unbiased < -14
        let mut half = mant >> shift;
        let rem = mant & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        if rem > halfway || (rem == halfway && (half & 1) == 1) {
            half += 1;
        }
        return sign | half as u16; // quant-ok: half ≤ 0x400 (may round up into the smallest normal), fits u16
    }
    sign // underflow → ±0
}

/// Decodes IEEE 754 binary16 bits back to f32 (always exact — every f16
/// value is representable in f32).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = (h & 0x03ff) as u32;
    let bits = if exp == 0x1f {
        // Infinity / NaN.
        sign | 0x7f80_0000 | (man << 13)
    } else if exp == 0 {
        if man == 0 {
            sign // ±0
        } else {
            // Subnormal: value = man · 2⁻²⁴, exact in f32 (man ≤ 1023 and
            // the scale is a power of two).
            let mag = man as f32 * (1.0 / 16_777_216.0); // quant-ok: man ≤ 1023 is exactly representable
            return f32::from_bits(sign | mag.to_bits());
        }
    } else {
        sign | (((exp as u32) + 112) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

#[derive(Debug, Clone, PartialEq)]
enum SlabData {
    F16(Vec<u16>),
    I8 { codes: Vec<i8>, scales: Vec<f32> },
}

/// A row-major factor slab stored at reduced precision, decoded
/// tile-by-tile at scan time.
///
/// The slab is immutable once encoded; re-encoding (precision changes,
/// segment compaction) goes back through [`EncodedSlab::encode`] from the
/// retained exact f32 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedSlab {
    f: usize,
    rows: usize,
    /// Rows covered by one i8 scale (also the granularity of
    /// [`EncodedSlab::err_bound`] for I8).  Irrelevant to F16 decode but
    /// kept so error bounds use one blocking everywhere.
    quant_block: usize,
    data: SlabData,
}

impl EncodedSlab {
    /// Encodes a row-major `rows × f` slab at `precision`; `None` for
    /// [`Precision::F32`] (nothing to encode — callers keep serving the
    /// exact slab, bit-identically).
    ///
    /// # Panics
    /// Panics when the buffer is not `rows × f` shaped or `quant_block`
    /// is zero.
    pub fn encode(
        items: &[f32],
        f: usize,
        quant_block: usize,
        precision: Precision,
    ) -> Option<Self> {
        assert!(f > 0, "latent dimension must be positive");
        assert!(quant_block > 0, "quant block must be positive");
        assert_eq!(items.len() % f, 0, "item buffer not a multiple of f");
        let rows = items.len() / f;
        let data = match precision {
            Precision::F32 => return None,
            Precision::F16 => SlabData::F16(items.iter().map(|&x| f32_to_f16_bits(x)).collect()),
            Precision::I8 => {
                let n_blocks = rows.div_ceil(quant_block).max(1);
                let mut codes = Vec::with_capacity(items.len());
                let mut scales = Vec::with_capacity(n_blocks);
                for block in items.chunks(quant_block * f) {
                    let max_abs = block.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
                    let scale = max_abs / 127.0;
                    scales.push(scale);
                    if scale == 0.0 {
                        codes.extend(std::iter::repeat_n(0i8, block.len()));
                    } else {
                        codes.extend(block.iter().map(|&x| {
                            (x / scale).round().clamp(-127.0, 127.0) as i8 // quant-ok: clamped to the i8 code range before narrowing
                        }));
                    }
                }
                if rows == 0 {
                    scales.push(0.0);
                }
                SlabData::I8 { codes, scales }
            }
        };
        Some(Self {
            f,
            rows,
            quant_block,
            data,
        })
    }

    /// The precision this slab is stored at.
    pub fn precision(&self) -> Precision {
        match self.data {
            SlabData::F16(_) => Precision::F16,
            SlabData::I8 { .. } => Precision::I8,
        }
    }

    /// Rows stored.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Latent dimension.
    pub fn rank(&self) -> usize {
        self.f
    }

    /// Rows per i8 scale block.
    pub fn quant_block(&self) -> usize {
        self.quant_block
    }

    /// Decodes rows `[start, end)` into `out` (`(end − start) · f` floats).
    ///
    /// # Panics
    /// Panics on an out-of-range row window or a misshapen `out`.
    pub fn decode_rows(&self, start: usize, end: usize, out: &mut [f32]) {
        assert!(start <= end && end <= self.rows, "row window out of range");
        assert_eq!(out.len(), (end - start) * self.f, "decode buffer shape");
        match &self.data {
            SlabData::F16(bits) => {
                let src = &bits[start * self.f..end * self.f];
                for (dst, &h) in out.iter_mut().zip(src.iter()) {
                    *dst = f16_bits_to_f32(h);
                }
            }
            SlabData::I8 { codes, scales } => {
                let f = self.f;
                for (i, row) in out.chunks_exact_mut(f).enumerate() {
                    let r = start + i;
                    let scale = scales[r / self.quant_block];
                    let src = &codes[r * f..(r + 1) * f];
                    for (dst, &c) in row.iter_mut().zip(src.iter()) {
                        *dst = c as f32 * scale; // quant-ok: i8 → f32 is exact; the decode is code · scale by definition
                    }
                }
            }
        }
    }

    /// Decodes the whole slab (norm tables, tests, re-layout).
    pub fn decode_all(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.rows * self.f];
        self.decode_rows(0, self.rows, &mut out);
        out
    }

    /// Bytes streamed from memory to score rows `[start, end)`: encoded
    /// coefficients plus, for I8, the f32 scales of every touched block.
    /// This is the quantity the `bytes_scanned` serving metric sums.
    pub fn scan_bytes(&self, start: usize, end: usize) -> u64 {
        assert!(start <= end && end <= self.rows, "row window out of range");
        let coeffs = ((end - start) * self.f) as u64;
        match &self.data {
            SlabData::F16(_) => coeffs * 2,
            SlabData::I8 { .. } => {
                if start == end {
                    return 0;
                }
                let first = start / self.quant_block;
                let last = (end - 1) / self.quant_block;
                coeffs + (last - first + 1) as u64 * 4
            }
        }
    }

    /// Upper bound on `‖decode(θ_v) − θ_v‖₂` for **any** row `v` in
    /// `[start, end)`.
    ///
    /// * I8: per-coefficient error ≤ `scale/2`, so the row error is at most
    ///   `√f · scale/2` with the largest scale of the touched blocks.
    /// * F16: per-coefficient error ≤ `F16_REL_ERR · |x|` plus
    ///   `F16_SUBNORMAL_ABS`, so the row error is bounded by
    ///   `F16_REL_ERR/(1 − F16_REL_ERR) · max_decoded_norm + √f ·
    ///   F16_SUBNORMAL_ABS`; `max_decoded_norm` must upper-bound the
    ///   **decoded** row norms of the window (the caller's block-max table,
    ///   which is exactly what the pruning path already keeps).
    ///
    /// Folding this into the Cauchy–Schwarz prune test — skip block `b`
    /// only when `‖x_u‖·(block_max[b] + err_b)·SLACK < t` — keeps pruning
    /// admissible for the exact scores: any pruned row's exact norm is at
    /// most its decoded norm plus `err_b`, so its exact score cannot reach
    /// the threshold either.
    pub fn err_bound(&self, start: usize, end: usize, max_decoded_norm: f32) -> f32 {
        assert!(start <= end && end <= self.rows, "row window out of range");
        let sqrt_f = (self.f as f32).sqrt(); // quant-ok: f is tens-to-hundreds, exact in f32
        match &self.data {
            SlabData::F16(_) => {
                F16_REL_ERR / (1.0 - F16_REL_ERR) * max_decoded_norm + sqrt_f * F16_SUBNORMAL_ABS
            }
            SlabData::I8 { scales, .. } => {
                if start == end {
                    return 0.0;
                }
                let first = start / self.quant_block;
                let last = (end - 1) / self.quant_block;
                let max_scale = scales[first..=last].iter().fold(0.0f32, |m, &s| m.max(s));
                sqrt_f * max_scale * 0.5
            }
        }
    }
}

/// Quantized counterpart of [`crate::batch_score_segment`]: decodes rows
/// `[start, end)` of the slab into `scratch` and scores them with the same
/// four-lane [`batch_score_block`] kernel — the scan streams encoded bytes,
/// the arithmetic stays f32.
///
/// The caller passes one block per call (the scan tile), so `scratch` stays
/// L2-resident; it is grown on demand and reused across calls.
#[allow(clippy::too_many_arguments)]
pub fn batch_score_rows_quant(
    users: &[f32],
    n_users: usize,
    slab: &EncodedSlab,
    start: usize,
    end: usize,
    f: usize,
    scratch: &mut Vec<f32>,
    out: &mut [f32],
) {
    assert_eq!(slab.rank(), f, "slab rank mismatch");
    let rows = end - start;
    scratch.resize(rows * f, 0.0);
    slab.decode_rows(start, end, &mut scratch[..rows * f]);
    batch_score_block(users, n_users, &scratch[..rows * f], rows, f, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_round_trips_names_and_codes() {
        for p in [Precision::F32, Precision::F16, Precision::I8] {
            assert_eq!(Precision::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(Precision::parse("F16"), Some(Precision::F16));
        assert_eq!(Precision::parse("half"), None);
        assert_eq!(Precision::default(), Precision::F32);
        assert!(Precision::F32.code() != Precision::F16.code());
        assert!(Precision::F16.code() != Precision::I8.code());
        assert_eq!(
            [4, 2, 1],
            [
                Precision::F32.bytes_per_coeff(),
                Precision::F16.bytes_per_coeff(),
                Precision::I8.bytes_per_coeff()
            ]
        );
    }

    #[test]
    fn f16_known_values_round_trip_exactly() {
        // Values exactly representable in binary16 must survive untouched.
        for &x in &[
            0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1.5, 1024.0,
        ] {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(back.to_bits(), x.to_bits(), "x = {x}");
        }
        // Canonical bit patterns.
        assert_eq!(f32_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f16_bits_to_f32(0x7c00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xfc00), f32::NEG_INFINITY);
        assert!(f16_bits_to_f32(0x7e00).is_nan());
    }

    #[test]
    fn f16_specials_saturate_and_quiet() {
        assert_eq!(f32_to_f16_bits(1e10), 0x7c00, "overflow saturates to inf");
        assert_eq!(f32_to_f16_bits(-1e10), 0xfc00);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Smallest positive subnormal and total underflow.
        assert_eq!(f16_bits_to_f32(0x0001), 2.0f32.powi(-24));
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-24)), 0x0001);
        assert_eq!(f32_to_f16_bits(1e-30), 0x0000, "tiny underflows to +0");
        assert_eq!(f32_to_f16_bits(-1e-30), 0x8000, "tiny underflows to -0");
    }

    #[test]
    fn f16_error_stays_within_documented_bound() {
        // Deterministic pseudo-random sweep over several magnitudes.
        let mut state = 0x1234_5678u32;
        for _ in 0..10_000 {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let unit = (state >> 8) as f32 / (1u32 << 24) as f32; // quant-ok: 24-bit mantissa fits f32 exactly
            let mag = 10.0f32.powi((state % 9) as i32 - 5); // quant-ok: small exponent range
            let x = (unit - 0.5) * 2.0 * mag;
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            let err = (back - x).abs();
            assert!(
                err <= F16_REL_ERR * x.abs() + F16_SUBNORMAL_ABS,
                "x = {x}, decoded {back}, err {err}"
            );
        }
    }

    #[test]
    fn i8_round_trip_error_within_half_scale() {
        let f = 8;
        let rows = 100;
        let mut items = Vec::with_capacity(rows * f);
        let mut state = 77u32;
        for _ in 0..rows * f {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            items.push(((state >> 8) as f32 / (1u32 << 24) as f32 - 0.5) * 6.0);
            // quant-ok: 24-bit mantissa exact
        }
        let slab = EncodedSlab::encode(&items, f, 16, Precision::I8).unwrap();
        let decoded = slab.decode_all();
        for (r, (row, dec)) in items.chunks(f).zip(decoded.chunks(f)).enumerate() {
            let block = &items[(r / 16) * 16 * f..(((r / 16) + 1) * 16 * f).min(items.len())];
            let scale = block.iter().fold(0.0f32, |m, &x| m.max(x.abs())) / 127.0;
            for (&x, &d) in row.iter().zip(dec.iter()) {
                assert!(
                    (d - x).abs() <= scale * 0.5 + 1e-7,
                    "row {r}: x {x} decoded {d} scale {scale}"
                );
            }
        }
    }

    #[test]
    fn i8_zero_block_encodes_and_decodes_to_zero() {
        let items = vec![0.0f32; 4 * 3];
        let slab = EncodedSlab::encode(&items, 3, 2, Precision::I8).unwrap();
        assert_eq!(slab.decode_all(), items);
        assert_eq!(slab.err_bound(0, 4, 0.0), 0.0);
    }

    #[test]
    fn encode_f32_is_identity_none() {
        assert!(EncodedSlab::encode(&[1.0, 2.0], 2, 4, Precision::F32).is_none());
    }

    #[test]
    fn scan_bytes_price_the_encoded_stream() {
        let f = 4;
        let items = vec![0.5f32; 10 * f];
        let f16 = EncodedSlab::encode(&items, f, 4, Precision::F16).unwrap();
        assert_eq!(f16.scan_bytes(0, 10), (10 * f * 2) as u64);
        let i8s = EncodedSlab::encode(&items, f, 4, Precision::I8).unwrap();
        // 10 rows of 4 one-byte codes + 3 touched scale blocks (4+4+2 rows).
        assert_eq!(i8s.scan_bytes(0, 10), (10 * f) as u64 + 3 * 4);
        assert_eq!(i8s.scan_bytes(4, 8), (4 * f) as u64 + 4);
        assert_eq!(i8s.scan_bytes(3, 3), 0);
    }

    #[test]
    fn err_bound_covers_worst_row_error() {
        let f = 6;
        let rows = 64;
        let mut items = Vec::with_capacity(rows * f);
        let mut state = 99u32;
        for r in 0..rows {
            for _ in 0..f {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                let unit = (state >> 8) as f32 / (1u32 << 24) as f32; // quant-ok: exact conversion
                                                                      // Skewed magnitudes stress the per-block scales.
                items.push((unit - 0.5) * if r < 8 { 8.0 } else { 0.05 });
            }
        }
        for precision in [Precision::F16, Precision::I8] {
            let slab = EncodedSlab::encode(&items, f, 8, precision).unwrap();
            let decoded = slab.decode_all();
            for b in 0..rows / 8 {
                let (s, e) = (b * 8, (b + 1) * 8);
                let max_norm = decoded[s * f..e * f]
                    .chunks(f)
                    .map(|r| crate::blas::norm_sq(r).sqrt())
                    .fold(0.0f32, f32::max);
                let bound = slab.err_bound(s, e, max_norm);
                for r in s..e {
                    let err: f32 = (0..f)
                        .map(|d| (decoded[r * f + d] - items[r * f + d]).powi(2))
                        .sum::<f32>()
                        .sqrt();
                    assert!(
                        err <= bound * (1.0 + 1e-5) + 1e-12,
                        "{precision}: row {r} err {err} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn quant_scoring_matches_scoring_the_decoded_slab() {
        let f = 16;
        let rows = 96;
        let mut items = Vec::with_capacity(rows * f);
        let mut state = 5u32;
        for _ in 0..rows * f {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            items.push(((state >> 8) as f32 / (1u32 << 24) as f32 - 0.5) * 2.0);
            // quant-ok: exact conversion
        }
        let users: Vec<f32> = (0..2 * f).map(|i| (i as f32 * 0.37).sin()).collect(); // quant-ok: index magnitude tiny
        for precision in [Precision::F16, Precision::I8] {
            let slab = EncodedSlab::encode(&items, f, 32, precision).unwrap();
            let decoded = slab.decode_all();
            let mut got = vec![0.0f32; 2 * 40];
            let mut scratch = Vec::new();
            batch_score_rows_quant(&users, 2, &slab, 8, 48, f, &mut scratch, &mut got);
            let mut expect = vec![0.0f32; 2 * 40];
            batch_score_block(&users, 2, &decoded[8 * f..48 * f], 40, f, &mut expect);
            assert_eq!(
                got, expect,
                "{precision}: decode-then-score must be bit-identical"
            );
        }
    }
}

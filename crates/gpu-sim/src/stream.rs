//! CUDA-stream-like device timelines.
//!
//! cuMF hides out-of-core data loading behind compute by issuing transfers on
//! separate CUDA streams (§4.4: "separate CUDA streams to preload from host
//! memory to GPU memory … close-to-zero data loading time except for the
//! first load").  The simulator models each device as two engines — one
//! compute engine and one copy engine — that can run concurrently; operations
//! issued on the same engine serialize.

/// Simulated timeline of one device with independent compute and copy
/// engines (all times in seconds since an arbitrary origin).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceTimeline {
    compute_busy_until: f64,
    copy_busy_until: f64,
    total_compute: f64,
    total_copy: f64,
}

impl DeviceTimeline {
    /// A fresh timeline with both engines idle at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time: when both engines become idle.
    pub fn now(&self) -> f64 {
        self.compute_busy_until.max(self.copy_busy_until)
    }

    /// When the compute engine becomes idle.
    pub fn compute_idle_at(&self) -> f64 {
        self.compute_busy_until
    }

    /// When the copy engine becomes idle.
    pub fn copy_idle_at(&self) -> f64 {
        self.copy_busy_until
    }

    /// Total busy time accumulated on the compute engine.
    pub fn total_compute(&self) -> f64 {
        self.total_compute
    }

    /// Total busy time accumulated on the copy engine.
    pub fn total_copy(&self) -> f64 {
        self.total_copy
    }

    /// Enqueues a kernel of the given duration; it starts no earlier than
    /// `not_before` (a data dependency) and no earlier than the end of the
    /// previous kernel.  Returns the kernel's completion time.
    pub fn enqueue_compute_after(&mut self, duration: f64, not_before: f64) -> f64 {
        let start = self.compute_busy_until.max(not_before);
        self.compute_busy_until = start + duration;
        self.total_compute += duration;
        self.compute_busy_until
    }

    /// Enqueues a kernel right after the previous one.
    pub fn enqueue_compute(&mut self, duration: f64) -> f64 {
        self.enqueue_compute_after(duration, 0.0)
    }

    /// Enqueues a copy of the given duration on the copy engine; starts no
    /// earlier than `not_before`.  Returns the copy's completion time.
    pub fn enqueue_copy_after(&mut self, duration: f64, not_before: f64) -> f64 {
        let start = self.copy_busy_until.max(not_before);
        self.copy_busy_until = start + duration;
        self.total_copy += duration;
        self.copy_busy_until
    }

    /// Enqueues a copy right after the previous one.
    pub fn enqueue_copy(&mut self, duration: f64) -> f64 {
        self.enqueue_copy_after(duration, 0.0)
    }

    /// Blocks both engines until `t` (a device-wide synchronization barrier,
    /// like the `synchronize_threads()` in Algorithm 3 line 12).
    pub fn barrier_at(&mut self, t: f64) {
        self.compute_busy_until = self.compute_busy_until.max(t);
        self.copy_busy_until = self.copy_busy_until.max(t);
    }

    /// Fraction of elapsed time the copy engine was hidden behind compute:
    /// 1.0 means every byte moved while kernels were running.
    pub fn copy_overlap_ratio(&self) -> f64 {
        if self.total_copy == 0.0 {
            return 1.0;
        }
        let exposed = self.now() - self.total_compute;
        (1.0 - (exposed / self.total_copy).clamp(0.0, 1.0)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_kernels_accumulate() {
        let mut t = DeviceTimeline::new();
        assert_eq!(t.enqueue_compute(1.0), 1.0);
        assert_eq!(t.enqueue_compute(2.0), 3.0);
        assert_eq!(t.now(), 3.0);
        assert_eq!(t.total_compute(), 3.0);
    }

    #[test]
    fn copy_overlaps_with_compute() {
        let mut t = DeviceTimeline::new();
        t.enqueue_compute(2.0);
        t.enqueue_copy(1.5);
        // Copy runs concurrently with compute: total time is still 2.0.
        assert_eq!(t.now(), 2.0);
        assert!(t.copy_overlap_ratio() > 0.99);
    }

    #[test]
    fn copy_longer_than_compute_is_exposed() {
        let mut t = DeviceTimeline::new();
        t.enqueue_compute(1.0);
        t.enqueue_copy(3.0);
        assert_eq!(t.now(), 3.0);
        assert!(t.copy_overlap_ratio() < 0.5);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut t = DeviceTimeline::new();
        let copy_done = t.enqueue_copy(1.0);
        // Kernel depends on the copied data.
        let k_done = t.enqueue_compute_after(0.5, copy_done);
        assert_eq!(k_done, 1.5);
        // Next copy can start immediately (engine idle at 1.0) …
        let c2 = t.enqueue_copy_after(1.0, 0.0);
        assert_eq!(c2, 2.0);
        // … and the next kernel waits on it.
        let k2 = t.enqueue_compute_after(0.25, c2);
        assert_eq!(k2, 2.25);
    }

    #[test]
    fn barrier_advances_both_engines() {
        let mut t = DeviceTimeline::new();
        t.enqueue_compute(1.0);
        t.barrier_at(5.0);
        assert_eq!(t.compute_idle_at(), 5.0);
        assert_eq!(t.copy_idle_at(), 5.0);
        t.enqueue_compute(1.0);
        assert_eq!(t.now(), 6.0);
    }

    #[test]
    fn overlap_ratio_with_no_copies_is_one() {
        let mut t = DeviceTimeline::new();
        t.enqueue_compute(1.0);
        assert_eq!(t.copy_overlap_ratio(), 1.0);
    }
}

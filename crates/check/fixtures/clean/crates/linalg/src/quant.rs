//! Clean-fixture codec module: every narrowing cast justified.

pub fn encode(x: f32, scale: f32) -> i8 {
    (x / scale).round().clamp(-127.0, 127.0) as i8 // quant-ok: clamped to the code range first
}

pub fn decode(c: i8, scale: f32) -> f32 {
    // quant-ok: i8 -> f32 widening is exact
    c as f32 * scale
}

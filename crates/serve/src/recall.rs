//! Recall measurement: approximate retrieval scored against exact ground
//! truth on the same snapshot.
//!
//! "Approximate" is only trustworthy when the approximation is *measured*:
//! this module builds an exact and an approximate [`TopKIndex`] over one
//! snapshot, runs the same queries through both, and reports recall@k plus
//! the block-scan counters of each side.  The same harness backs the
//! statistical recall tests, the `serving_approximate` bench group, and the
//! `serve_load_gen --recall` smoke gate, so every epsilon→recall claim in
//! the repo comes from one code path.
//!
//! Recall@k here is set overlap: `|approx ∩ exact| / |exact|` per query,
//! where both sides are the item-id sets of the returned lists.  Scores are
//! deliberately ignored — early termination may drop a true top-k item, but
//! it never changes the score of an item it did return.

use crate::snapshot::FactorSnapshot;
use crate::sync::Arc;
use crate::topk::{Query, ScoreKind, TopKIndex};
use cumf_linalg::{ApproxPolicy, PruneStats};

/// Outcome of one [`measure_recall`] run: per-query recall aggregates plus
/// both sides' block-scan counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RecallReport {
    /// Queries measured.
    pub queries: usize,
    /// Mean recall@k across queries (1.0 when there were none).
    pub mean_recall: f64,
    /// Worst single-query recall@k (1.0 when there were none).
    pub min_recall: f64,
    /// Queries whose approximate list matched the exact list item-for-item
    /// (same ids, same order).
    pub identical: usize,
    /// Block counters of the exact side.
    pub exact_stats: PruneStats,
    /// Block counters of the approximate side.
    pub approx_stats: PruneStats,
}

impl RecallReport {
    /// True when every query's approximate list was identical to the exact
    /// one — what `epsilon = 0` must achieve.
    pub fn all_identical(&self) -> bool {
        self.identical == self.queries
    }
}

impl std::fmt::Display for RecallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recall@k over {} queries: mean {:.4}, min {:.4}, {} identical; \
             blocks scored exact {} vs approx {} ({} terminated)",
            self.queries,
            self.mean_recall,
            self.min_recall,
            self.identical,
            self.exact_stats.blocks_scored,
            self.approx_stats.blocks_scored,
            self.approx_stats.blocks_terminated,
        )
    }
}

/// Recall@k of one approximate result list against its exact ground truth:
/// `|approx ∩ exact| / |exact|` over item ids.  An empty exact list means
/// there was nothing to recall — that counts as 1.0, so out-of-range users
/// and `k = 0` queries do not drag an aggregate down.
pub fn recall_at_k(exact: &[(u32, f32)], approx: &[(u32, f32)]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let truth: std::collections::HashSet<u32> = exact.iter().map(|&(v, _)| v).collect();
    let hit = approx.iter().filter(|&&(v, _)| truth.contains(&v)).count();
    hit as f64 / truth.len() as f64
}

/// Runs `queries` through an exact and a `policy`-approximate
/// [`TopKIndex`] over the same `snapshot` and aggregates recall@k.
///
/// Both indexes share `item_block`, `score`, and `shards`, so the *only*
/// difference between the two sides is the early-termination policy — the
/// measured recall isolates exactly what approximation costs.
pub fn measure_recall(
    snapshot: &Arc<FactorSnapshot>,
    queries: &[Query],
    item_block: usize,
    score: ScoreKind,
    shards: usize,
    policy: &ApproxPolicy,
) -> RecallReport {
    let exact = TopKIndex::with_shards(Arc::clone(snapshot), item_block, score, shards);
    let approx = TopKIndex::with_approx(
        Arc::clone(snapshot),
        item_block,
        score,
        shards,
        Some(*policy),
    );
    let (exact_results, exact_stats) = exact.query_batch_stats(queries);
    let (approx_results, approx_stats) = approx.query_batch_stats(queries);
    report_from_lists(&exact_results, &approx_results, exact_stats, approx_stats)
}

/// Aggregates paired exact/approximate result lists into a
/// [`RecallReport`] — the measurement half of [`measure_recall`], usable
/// when the lists were produced elsewhere (e.g. through a live
/// [`crate::batcher::TopKService`] rather than bare indexes).
///
/// # Panics
/// Panics when the two sides disagree on the query count — pairing them
/// would silently misattribute recall.
pub fn report_from_lists(
    exact: &[Vec<(u32, f32)>],
    approx: &[Vec<(u32, f32)>],
    exact_stats: PruneStats,
    approx_stats: PruneStats,
) -> RecallReport {
    assert_eq!(
        exact.len(),
        approx.len(),
        "exact and approximate result counts differ"
    );
    let mut sum = 0.0f64;
    let mut min = 1.0f64;
    let mut identical = 0usize;
    for (e, a) in exact.iter().zip(approx) {
        let r = recall_at_k(e, a);
        sum += r;
        min = min.min(r);
        if e == a {
            identical += 1;
        }
    }
    let queries = exact.len();
    RecallReport {
        queries,
        mean_recall: if queries > 0 {
            sum / queries as f64
        } else {
            1.0
        },
        min_recall: min,
        identical,
        exact_stats,
        approx_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_linalg::FactorMatrix;

    #[test]
    fn recall_at_k_counts_set_overlap() {
        let exact = vec![(1, 3.0), (2, 2.0), (3, 1.0), (4, 0.5)];
        assert_eq!(recall_at_k(&exact, &exact), 1.0);
        // Order does not matter, only membership.
        let shuffled = vec![(4, 0.5), (3, 1.0), (2, 2.0), (1, 3.0)];
        assert_eq!(recall_at_k(&exact, &shuffled), 1.0);
        let half = vec![(1, 3.0), (3, 1.0)];
        assert_eq!(recall_at_k(&exact, &half), 0.5);
        assert_eq!(recall_at_k(&exact, &[]), 0.0);
        // Nothing to recall counts as perfect.
        assert_eq!(recall_at_k(&[], &half), 1.0);
    }

    #[test]
    fn report_aggregates_mean_min_and_identical() {
        let exact = vec![vec![(1, 2.0), (2, 1.0)], vec![(3, 2.0), (4, 1.0)]];
        let approx = vec![vec![(1, 2.0), (2, 1.0)], vec![(3, 2.0), (9, 1.0)]];
        let r = report_from_lists(
            &exact,
            &approx,
            PruneStats::default(),
            PruneStats::default(),
        );
        assert_eq!(r.queries, 2);
        assert_eq!(r.identical, 1);
        assert!(!r.all_identical());
        assert!((r.mean_recall - 0.75).abs() < 1e-12);
        assert!((r.min_recall - 0.5).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("mean 0.75"));
    }

    #[test]
    fn zero_queries_report_perfect_recall() {
        let r = report_from_lists(&[], &[], PruneStats::default(), PruneStats::default());
        assert_eq!(r.queries, 0);
        assert_eq!(r.mean_recall, 1.0);
        assert_eq!(r.min_recall, 1.0);
        assert!(r.all_identical());
    }

    #[test]
    fn measure_recall_is_perfect_and_identical_at_epsilon_zero() {
        let snap = Arc::new(FactorSnapshot::from_factors(
            FactorMatrix::random(16, 8, 1.0, 40),
            FactorMatrix::random(600, 8, 1.0, 41),
        ));
        let queries: Vec<Query> = (0..16u32).map(|u| Query::new(u, 10)).collect();
        let r = measure_recall(
            &snap,
            &queries,
            64,
            ScoreKind::Dot,
            2,
            &ApproxPolicy::exact(),
        );
        assert_eq!(r.queries, 16);
        assert!(r.all_identical(), "epsilon 0 must be bit-identical");
        assert_eq!(r.mean_recall, 1.0);
        assert_eq!(r.min_recall, 1.0);
    }
}

//! Closed-loop integration: streaming ingestion → incremental training →
//! delta publication **under live serving traffic**, with the freshness
//! histogram and convergence pinned.
//!
//! These tests are the PR's acceptance harness: the online loop must keep a
//! `TopKService` fresh (bounded ingest→publish freshness, strictly
//! monotonic generations, zero full-catalog Θ copies) while concurrent
//! clients keep reading, and the incrementally-updated factors must track
//! what a full batch retrain would have produced.

use cumf_core::als::BaseAls;
use cumf_core::config::AlsConfig;
use cumf_core::sgd::{SgdConfig, SgdEngine};
use cumf_core::Engine;
use cumf_data::stream::{
    MutationStreamConfig, RatingStream, ReplayStream, StreamBatcher, SyntheticMutationStream,
};
use cumf_data::synth::{SyntheticConfig, SyntheticDataset};
use cumf_serve::{
    FactorSnapshot, OnlineLoop, OnlineLoopConfig, ServeConfig, SnapshotStore, TopKService,
};
use cumf_sparse::{Coo, Csr, Entry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const F: usize = 8;
const LAMBDA: f32 = 0.05;

fn dataset() -> SyntheticDataset {
    SyntheticConfig {
        m: 80,
        n: 50,
        nnz: 2400,
        rank: 4,
        noise_std: 0.05,
        ..Default::default()
    }
    .generate()
}

fn train(r: &Csr, iterations: usize) -> BaseAls {
    let mut engine = BaseAls::new(
        AlsConfig {
            f: F,
            lambda: LAMBDA,
            ..Default::default()
        },
        r.clone(),
    );
    for _ in 0..iterations {
        engine.iterate();
    }
    engine
}

/// RMSE of `snap`'s predictions over the entries it can score (existing
/// user and item ids); returns `(rmse, scored)`.
fn snapshot_rmse(snap: &FactorSnapshot, entries: &[Entry]) -> (f64, usize) {
    let mut se = 0.0f64;
    let mut n = 0usize;
    for e in entries {
        if let Some(p) = snap.predict(e.row, e.col) {
            se += ((e.val - p) as f64).powi(2);
            n += 1;
        }
    }
    ((se / n.max(1) as f64).sqrt(), n)
}

/// Drains a stream into a deterministic event list (so fold-in, SGD and the
/// batch retrain all see byte-identical input).
fn drain<S: RatingStream>(mut stream: S) -> Vec<Entry> {
    let mut out = Vec::new();
    while let Some(e) = stream.next_rating() {
        out.push(e);
    }
    out
}

#[test]
fn closed_loop_stays_fresh_under_serving_traffic() {
    let data = dataset();
    let r = data.to_csr();
    let engine = train(&r, 4);
    let service = TopKService::start(
        FactorSnapshot::from_factors(engine.x().clone(), engine.theta().clone()),
        ServeConfig::default(),
    );

    // Live read traffic for the whole duration of the loop.
    let stop = Arc::new(AtomicBool::new(false));
    let client = service.client();
    let reader_stop = Arc::clone(&stop);
    let reader = std::thread::spawn(move || {
        let mut served = 0u64;
        let mut user = 0u32;
        while !reader_stop.load(Ordering::Relaxed) {
            if client.recommend(user % 80, 5, &[]).is_ok() {
                served += 1;
            }
            user = user.wrapping_add(1);
        }
        served
    });

    let stream = SyntheticMutationStream::new(
        &data,
        MutationStreamConfig {
            events: 200,
            new_users: 5,
            new_user_fraction: 0.1,
            ..Default::default()
        },
    );
    let metrics = service.metrics_handle();
    let mut driver = OnlineLoop::fold_in(
        Box::new(engine),
        &r,
        StreamBatcher::spawn(stream, 64),
        &service,
        Arc::clone(&metrics),
        OnlineLoopConfig {
            max_batch_events: 32,
            ..Default::default()
        },
    );

    // Generations must be published strictly in order — a mixed or
    // reordered generation would let a reader observe an older snapshot
    // after a newer one.
    let mut last_generation = service.snapshot().generation();
    let base_generation = last_generation;
    loop {
        match driver.step().expect("delta publish failed") {
            None => break,
            Some(outcome) => {
                if let Some(g) = outcome.generation {
                    assert!(g > last_generation, "generation went backwards");
                    last_generation = g;
                }
                if let Some(stats) = outcome.stats {
                    assert_eq!(stats.item_factor_bytes_copied, 0);
                }
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let served = reader.join().expect("reader thread panicked");
    assert!(served > 0, "no reads completed under the loop");

    let report = driver.report();
    assert_eq!(report.events, 200);
    assert!(report.publishes >= 200 / 32);
    assert_eq!(
        service.snapshot().generation(),
        base_generation + report.publishes
    );

    // Freshness: every rating recorded once, distribution well-formed and
    // bounded (ingest → publish is in-process; seconds would mean the loop
    // stalled).
    let freshness = metrics.report().freshness;
    assert_eq!(freshness.count(), 200);
    assert!(freshness.quantile(0.99) >= freshness.quantile(0.5));
    assert!(
        freshness.quantile(0.99) < Duration::from_secs(5).as_nanos() as u64,
        "p99 freshness {}ns",
        freshness.quantile(0.99)
    );

    // New-pool users (ids 80..85) were appended and are immediately
    // servable through the same service the readers used.
    let snap = service.snapshot();
    assert!(snap.n_users() > 80);
    assert_eq!(snap.recommend_one(80, 5, &[]).len(), 5);
}

#[test]
fn incremental_updates_track_a_full_batch_retrain() {
    let data = dataset();
    let r = data.to_csr();
    let engine = train(&r, 4);
    let stale = FactorSnapshot::from_factors(engine.x().clone(), engine.theta().clone());

    // One deterministic event list, replayed identically into every
    // contender.  Existing users only, so the stale snapshot can score all
    // of it and the three RMSEs are directly comparable.
    let events = drain(SyntheticMutationStream::new(
        &data,
        MutationStreamConfig {
            events: 300,
            ..Default::default()
        },
    ));
    // The stream re-rates popular (user, item) pairs with fresh noise and
    // the loop is last-write-wins, so models are scored on the *effective*
    // rating set: the latest value per pair.
    let eval: Vec<Entry> = {
        let last: BTreeMap<(u32, u32), f32> =
            events.iter().map(|e| ((e.row, e.col), e.val)).collect();
        last.into_iter()
            .map(|((row, col), val)| Entry { row, col, val })
            .collect()
    };
    let (rmse_stale, scored) = snapshot_rmse(&stale, &eval);
    assert_eq!(scored, eval.len());

    // Contender 1: segment-aware fold-in.
    let fold_store = SnapshotStore::new(stale.clone());
    let fold_metrics = Arc::new(cumf_serve::ServeMetrics::new());
    let mut fold_driver = OnlineLoop::fold_in(
        Box::new(train(&r, 4)),
        &r,
        StreamBatcher::spawn(ReplayStream::from_entries(events.clone(), r.n_cols()), 64),
        &fold_store,
        Arc::clone(&fold_metrics),
        OnlineLoopConfig::default(),
    );
    fold_driver.run().expect("fold-in loop failed");
    let (rmse_fold, _) = snapshot_rmse(&fold_store.load(), &eval);

    // Contender 2: streaming SGD absorption.
    let sgd_store = SnapshotStore::new(stale.clone());
    let sgd_metrics = Arc::new(cumf_serve::ServeMetrics::new());
    // Streamed SGD continues from the batch-trained model, not from a cold
    // start — seed it through the unified `Engine::set_factors`.
    let mut sgd = SgdEngine::new(
        SgdConfig {
            f: F,
            lambda: LAMBDA,
            ..Default::default()
        },
        r.clone(),
    );
    sgd.set_factors(engine.x().clone(), engine.theta().clone());
    let mut sgd_driver = OnlineLoop::sgd(
        sgd,
        StreamBatcher::spawn(ReplayStream::from_entries(events.clone(), r.n_cols()), 64),
        &sgd_store,
        Arc::clone(&sgd_metrics),
        OnlineLoopConfig::default(),
    );
    sgd_driver.run().expect("SGD loop failed");
    // The SGD loop publishes user rows against the *frozen* serving Θ, but
    // its engine's own factors (X and drifted Θ) are the convergence
    // reference.
    let sgd_engine = sgd_driver.sgd_engine().expect("sgd loop has an engine");
    let sgd_model =
        FactorSnapshot::from_factors(sgd_engine.x().clone(), sgd_engine.theta().clone());
    let (rmse_sgd, _) = snapshot_rmse(&sgd_model, &eval);

    // Reference: a full batch retrain over training + streamed ratings
    // (last write wins, like the loop's history).
    let mut merged: BTreeMap<(u32, u32), f32> = r.iter().map(|e| ((e.row, e.col), e.val)).collect();
    for e in &events {
        merged.insert((e.row, e.col), e.val);
    }
    let mut coo = Coo::new(r.n_rows(), r.n_cols());
    for (&(u, v), &val) in &merged {
        coo.push(u, v, val).expect("merged entry in range");
    }
    let retrained = train(&coo.to_csr(), 4);
    let batch = FactorSnapshot::from_factors(retrained.x().clone(), retrained.theta().clone());
    let (rmse_batch, _) = snapshot_rmse(&batch, &eval);

    // Both incremental paths must beat the stale model on the streamed
    // ratings, and fold-in must land within striking distance of the full
    // retrain (it re-solves users exactly, but against frozen items).
    assert!(
        rmse_fold < rmse_stale,
        "fold-in did not improve: {rmse_fold:.4} vs stale {rmse_stale:.4}"
    );
    assert!(
        rmse_sgd < rmse_stale,
        "SGD did not improve: {rmse_sgd:.4} vs stale {rmse_stale:.4}"
    );
    // Fold-in re-solves users exactly but against *frozen* items, so it
    // cannot fully match a retrain that also moves Θ — within 2× is the
    // structural expectation.
    assert!(
        rmse_fold <= rmse_batch * 2.0,
        "fold-in {rmse_fold:.4} too far from batch retrain {rmse_batch:.4}"
    );
    // Both loops reflected every event exactly once.
    assert_eq!(fold_metrics.report().freshness.count(), events.len() as u64);
    assert_eq!(sgd_metrics.report().freshness.count(), events.len() as u64);
}

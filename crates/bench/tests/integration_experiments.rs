//! Integration tests for the experiment harness: every table/figure function
//! runs end-to-end (in its quick configuration) and its output has the shape
//! the paper reports.

use cumf_bench::experiments::{self as exp, ExperimentConfig};

#[test]
fn every_figure_runs_in_quick_mode() {
    let cfg = ExperimentConfig::quick();
    assert_eq!(exp::fig6(&cfg).len(), 2);
    assert_eq!(exp::fig7(&cfg).len(), 2);
    assert_eq!(exp::fig8(&cfg).len(), 2);
    assert_eq!(exp::fig9(&cfg).len(), 2);
    assert_eq!(exp::fig10(&cfg).series.len(), 3);
    assert_eq!(exp::fig11().len(), 4);
    assert_eq!(exp::table1().len(), 3);
    assert_eq!(exp::reduction_ablation().len(), 4);
    assert!(!exp::bin_ablation().is_empty());
}

#[test]
fn fig6_headline_cumf_converges_and_is_competitive() {
    // The Figure 6 claim: cuMF on one GPU is competitive with 30-core CPU
    // solvers — slower per early progress, but it catches up and wins on
    // final quality within the run.
    let cfg = ExperimentConfig::quick();
    for fig in exp::fig6(&cfg) {
        let cumf = &fig.series[0];
        let nomad = &fig.series[1];
        let libmf = &fig.series[2];
        // cuMF's final RMSE is at least as good as both SGD baselines' final
        // RMSE (ALS converges in far fewer iterations).
        assert!(
            cumf.final_rmse() <= nomad.final_rmse() + 0.05,
            "{}: cuMF {} vs NOMAD {}",
            fig.title,
            cumf.final_rmse(),
            nomad.final_rmse()
        );
        assert!(
            cumf.final_rmse() <= libmf.final_rmse() + 0.05,
            "{}: cuMF {} vs libMF {}",
            fig.title,
            cumf.final_rmse(),
            libmf.final_rmse()
        );
    }
}

#[test]
fn fig7_and_fig8_ablations_only_stretch_the_time_axis() {
    let cfg = ExperimentConfig::quick();
    for fig in exp::fig7(&cfg).into_iter().chain(exp::fig8(&cfg)) {
        let on = &fig.series[0];
        let off = &fig.series[1];
        // Identical RMSE sequences...
        for (a, b) in on.points.iter().zip(off.points.iter()) {
            assert_eq!(
                a.rmse, b.rmse,
                "{}: ablations must not change numerics",
                fig.title
            );
        }
        // ... but the ablated run takes longer to get there.
        assert!(
            off.points.last().unwrap().time_s > on.points.last().unwrap().time_s,
            "{}: the ablated configuration should be slower",
            fig.title
        );
    }
}

#[test]
fn fig9_time_axis_shrinks_with_more_gpus() {
    let cfg = ExperimentConfig::quick();
    for fig in exp::fig9(&cfg) {
        let times: Vec<f64> = fig
            .series
            .iter()
            .map(|s| s.points.last().unwrap().time_s)
            .collect();
        assert!(times[1] < times[0], "{}: 2 GPUs should beat 1", fig.title);
        assert!(times[2] < times[1], "{}: 4 GPUs should beat 2", fig.title);
    }
}

#[test]
fn table1_rows_reproduce_the_cheaper_claim() {
    for row in exp::table1() {
        assert!(
            row.cumf_cost() < row.baseline_cost(),
            "{}: cuMF must be cheaper ({} vs {})",
            row.baseline_name,
            row.cumf_cost(),
            row.baseline_cost()
        );
    }
}

#[test]
fn reduction_ablation_speedups_are_in_the_papers_range() {
    let rows = exp::reduction_ablation();
    let single = rows[0].seconds;
    let one_flat = rows[1].seconds;
    let one_dual = rows[2].seconds;
    let two_dual = rows[3].seconds;
    let parallel_speedup = single / one_flat;
    let topo_speedup = one_dual / two_dual;
    // Paper: 1.7x and 1.5x.  Accept a generous band around those.
    assert!(
        (1.3..4.0).contains(&parallel_speedup),
        "parallel-reduction speedup {parallel_speedup} outside the expected band"
    );
    assert!(
        (1.2..2.5).contains(&topo_speedup),
        "topology-aware speedup {topo_speedup} outside the expected band"
    );
}

//! Hot-swap under fire: concurrent clients query while snapshots are
//! republished.  The acceptance bar: no panics, every reply is internally
//! consistent with exactly one published generation (never a mix), and the
//! cache stops serving a generation the moment the next one is published.

use cumf_linalg::FactorMatrix;
use cumf_serve::{FactorSnapshot, ServeConfig, TopKService};
use std::time::Duration;

const N_ITEMS: usize = 500;
const N_USERS: usize = 16;
const F: usize = 8;
const K: usize = 3;
const GENERATIONS: usize = 8;

/// Builds a snapshot whose entire top-k result encodes `tag`: every item
/// score scales with `tag + 1`, and item `tag` is a beacon that outranks
/// everything.  Any mix of two generations' scores would produce a result
/// list matching neither expectation.
fn tagged_snapshot(tag: usize) -> FactorSnapshot {
    let x = FactorMatrix::from_vec(N_USERS, F, vec![1.0; N_USERS * F]);
    let mut theta = FactorMatrix::zeros(N_ITEMS, F);
    for v in 0..N_ITEMS {
        let base = (tag + 1) as f32 * (1.0 + (v % 13) as f32) * 1e-3;
        theta.vector_mut(v).fill(base);
    }
    theta.vector_mut(tag).fill(100.0 + tag as f32);
    FactorSnapshot::from_factors(x, theta)
}

#[test]
fn hot_swap_under_concurrent_queries_never_mixes_generations() {
    let snapshots: Vec<FactorSnapshot> = (0..GENERATIONS).map(tagged_snapshot).collect();
    // All users share the same factor vector, so one expected result per
    // snapshot covers every query.
    let expected: Vec<Vec<(u32, f32)>> = snapshots
        .iter()
        .map(|s| s.recommend_one(0, K, &[]))
        .collect();
    for (tag, exp) in expected.iter().enumerate() {
        assert_eq!(exp[0].0 as usize, tag, "beacon item must rank first");
    }

    let service = TopKService::start(
        snapshots[0].clone(),
        ServeConfig {
            max_batch: 16,
            max_delay: Duration::from_millis(1),
            ..Default::default()
        },
    );

    std::thread::scope(|s| {
        for t in 0..4usize {
            let client = service.client();
            let expected = &expected;
            s.spawn(move || {
                for i in 0..200u32 {
                    let user = (t as u32 * 7 + i) % N_USERS as u32;
                    let got = client.recommend(user, K, &[]).unwrap();
                    assert!(
                        expected.iter().any(|e| e == &got),
                        "reply matches no single generation (mixed?): {got:?}"
                    );
                }
            });
        }
        // Publish the remaining generations while the clients hammer away.
        for snap in &snapshots[1..] {
            std::thread::sleep(Duration::from_millis(2));
            service.publish(snap.clone());
        }
    });

    // After the last publish every further query — cached or scored — must
    // come from the final generation: the cache may not serve stale entries.
    let client = service.client();
    for user in 0..N_USERS as u32 {
        let got = client.recommend(user, K, &[]).unwrap();
        assert_eq!(
            got,
            expected[GENERATIONS - 1],
            "stale generation served after final publish (user {user})"
        );
    }

    let m = service.metrics();
    assert_eq!(m.requests, m.responses, "every request was answered");
    assert_eq!(m.snapshot_swaps as usize, GENERATIONS - 1);
}

#[test]
fn publish_does_not_block_in_flight_reads() {
    // A reader holding the old Arc keeps a coherent view across publishes.
    let service = TopKService::start_default(tagged_snapshot(0));
    let before = service.snapshot();
    let g0 = before.generation();
    service.publish(tagged_snapshot(1));
    service.publish(tagged_snapshot(2));
    assert_eq!(before.generation(), g0, "held snapshot mutated by publish");
    assert_eq!(before.recommend_one(0, 1, &[])[0].0, 0);
    assert_eq!(service.snapshot().recommend_one(0, 1, &[])[0].0, 2);
}

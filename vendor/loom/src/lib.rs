//! Vendored dependency-free stand-in for the `loom` permutation-testing
//! crate (<https://github.com/tokio-rs/loom>), API-compatible for the
//! subset this workspace uses.
//!
//! [`model`] runs a closure many times, each time under a cooperative
//! scheduler that forces a different interleaving of the closure's
//! instrumented operations ([`sync::atomic`] atomics, [`sync::Mutex`],
//! [`sync::RwLock`], [`thread::spawn`]/join).  The default strategy is a
//! CHESS-style depth-first enumeration bounded by a **preemption budget**
//! (2 by default): every schedule reachable with at most that many forced
//! context switches is explored.  A found failure panics with the full
//! schedule trace; because executions are a pure function of their
//! schedule, re-running the same model reproduces the same failure
//! deterministically.
//!
//! ## Differences from real loom
//!
//! - Interleavings are explored under **sequential consistency** — this
//!   shim checks protocol/interleaving correctness (lost updates, CAS
//!   publish ordering, torn multi-step invariants, deadlocks), not C11
//!   weak-memory reorderings.  `Ordering` arguments are accepted and
//!   passed through, but do not change the explored behaviours.
//! - No `UnsafeCell`/`lazy_static` modeling (the workspace forbids
//!   `unsafe` and uses const-init statics).
//! - Closures run on the calling thread plus real (but strictly
//!   one-at-a-time) OS threads, so `model` bodies may borrow locals.
//!
//! See `vendor/README.md` for the swap-back contract shared by all shims.

pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub use rt::Strategy;

use rt::{Execution, Schedule};

/// Summary of a completed exploration, returned by [`Builder::check`].
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Distinct interleavings executed.
    pub interleavings: usize,
    /// `true` when the bounded schedule space was fully enumerated
    /// (exhaustive strategy only; random runs report `false`).
    pub complete: bool,
    /// `true` when a replayed choice point diverged — the model closure
    /// itself is nondeterministic and coverage is best-effort.
    pub nondeterminism: bool,
}

/// Configures and runs a model exploration.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// Preemption budget for the exhaustive strategy (CHESS bound).
    /// Switches at blocking or thread exit are free; only a switch away
    /// from a thread that could have continued costs budget.
    pub max_preemptions: usize,
    /// Safety cap on the number of interleavings executed.  Hitting it
    /// stops exploration with `Stats::complete == false` rather than
    /// failing.
    pub max_iterations: usize,
    /// Per-interleaving instrumented-step budget; exceeding it aborts the
    /// model (livelock / unbounded loop guard).
    pub max_steps: usize,
    /// Schedule selection strategy.
    pub strategy: Strategy,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            max_preemptions: 2,
            max_iterations: 100_000,
            max_steps: 50_000,
            strategy: Strategy::Exhaustive,
        }
    }
}

impl Builder {
    /// A builder with the default bounded-exhaustive configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches to seeded random exploration for `iterations` runs.
    pub fn random(mut self, seed: u64, iterations: usize) -> Self {
        self.strategy = Strategy::Random { seed, iterations };
        self
    }

    /// Sets the preemption budget.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.max_preemptions = bound;
        self
    }

    /// Explores `f` under every schedule the strategy yields.  Panics on
    /// the first failing interleaving, with the schedule trace embedded in
    /// the message so the failure is identifiable and reproducible (the
    /// same builder + closure always fails on the same interleaving).
    pub fn check<F: Fn()>(&self, f: F) -> Stats {
        let mut schedule = Some(Schedule::new(self.strategy, self.max_preemptions));
        let mut interleavings = 0usize;
        let mut nondeterminism = false;
        loop {
            let exec = Execution::new(
                schedule.take().expect("schedule threaded through each run"),
                self.max_steps,
            );
            rt::run_root(&exec, &f);
            if exec.aborted() {
                // Unpark blocked threads so they unwind and finish before
                // the failure is reported.
                exec.force_teardown();
            }
            let (mut sched, abort, abort_reason, trace) = exec.take_outcome();
            interleavings += 1;
            sched.runs_counter = interleavings;
            nondeterminism |= sched.nondeterminism;
            if let Some(reason) = abort_reason {
                panic!(
                    "loom: model failed on interleaving #{interleavings} \
                     ({:?}, max_preemptions={}): {reason}",
                    self.strategy, self.max_preemptions
                );
            }
            if let Some(payload) = abort {
                let cause = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                panic!(
                    "loom: model failed on interleaving #{interleavings} \
                     ({:?}, max_preemptions={}): {cause}; schedule trace: {trace:?}",
                    self.strategy, self.max_preemptions
                );
            }
            if interleavings >= self.max_iterations {
                return Stats {
                    interleavings,
                    complete: false,
                    nondeterminism,
                };
            }
            if !sched.advance() {
                return Stats {
                    interleavings,
                    complete: matches!(self.strategy, Strategy::Exhaustive),
                    nondeterminism,
                };
            }
            schedule = Some(sched);
        }
    }
}

/// Explores `f` with the default bounded-exhaustive [`Builder`] — the
/// drop-in equivalent of real loom's `loom::model`.
pub fn model<F: Fn()>(f: F) {
    Builder::new().check(f);
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Arc, Mutex};
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn failure_message(r: std::thread::Result<()>) -> String {
        let payload = r.expect_err("model should have failed");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("failure payload is a message")
    }

    #[test]
    fn mutex_preserves_mutual_exclusion() {
        let stats = Builder::new().check(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = Arc::clone(&m);
            let h = thread::spawn(move || {
                for _ in 0..3 {
                    let mut g = m2.lock().expect("model mutex");
                    let v = *g;
                    thread::yield_now();
                    *g = v + 1;
                }
            });
            for _ in 0..3 {
                let mut g = m.lock().expect("model mutex");
                let v = *g;
                thread::yield_now();
                *g = v + 1;
            }
            h.join().expect("model thread");
            assert_eq!(*m.lock().expect("model mutex"), 6);
        });
        assert!(stats.complete, "bounded space should be enumerable");
        assert!(!stats.nondeterminism);
    }

    #[test]
    fn detects_lost_update_between_unsynchronized_threads() {
        // Classic racy read-modify-write: load, yield, store.  Some
        // interleaving loses an increment, and the checker must find it.
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let h = thread::spawn(move || {
                    let v = n2.load(Ordering::SeqCst);
                    n2.store(v + 1, Ordering::SeqCst);
                });
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
                h.join().expect("model thread");
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        }));
        let msg = failure_message(result);
        assert!(msg.contains("lost update"), "unexpected failure: {msg}");
    }

    #[test]
    fn failing_interleaving_reproduces_deterministically() {
        // The same model run twice must fail on the same interleaving with
        // the same schedule trace — that is the reproducibility contract.
        let run = || {
            failure_message(catch_unwind(AssertUnwindSafe(|| {
                model(|| {
                    let n = Arc::new(AtomicUsize::new(0));
                    let n2 = Arc::clone(&n);
                    let h = thread::spawn(move || {
                        let v = n2.load(Ordering::SeqCst);
                        n2.store(v + 1, Ordering::SeqCst);
                    });
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                    h.join().expect("model thread");
                    assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
                });
            })))
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "failure must replay bit-for-bit");
        assert!(
            first.contains("schedule trace"),
            "failure message should carry the trace: {first}"
        );
    }

    #[test]
    fn detects_deadlock_from_inverted_lock_order() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = thread::spawn(move || {
                    let _ga = a2.lock().expect("model mutex");
                    thread::yield_now();
                    let _gb = b2.lock().expect("model mutex");
                });
                let _gb = b.lock().expect("model mutex");
                thread::yield_now();
                let _ga = a.lock().expect("model mutex");
                drop((_gb, _ga));
                h.join().expect("model thread");
            });
        }));
        let msg = failure_message(result);
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn bounded_mode_explores_at_least_100_interleavings() {
        // Two threads with a handful of instrumented steps each: the
        // preemption-bounded space must still contain >= 100 schedules
        // (the ISSUE's floor for real scenarios).
        let stats = Builder::new().preemption_bound(3).check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let h = thread::spawn(move || {
                for _ in 0..6 {
                    n2.fetch_add(1, Ordering::SeqCst);
                }
            });
            for _ in 0..6 {
                n.fetch_add(1, Ordering::SeqCst);
            }
            h.join().expect("model thread");
            assert_eq!(n.load(Ordering::SeqCst), 12);
        });
        assert!(
            stats.interleavings >= 100,
            "only {} interleavings explored",
            stats.interleavings
        );
        assert!(stats.complete);
    }

    #[test]
    fn join_returns_the_thread_value() {
        model(|| {
            let h = thread::spawn(|| 40 + 2);
            assert_eq!(h.join().expect("model thread"), 42);
        });
    }

    #[test]
    fn random_strategy_is_seed_deterministic() {
        let explore = |seed| {
            let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let hits2 = Arc::clone(&hits);
            let stats = Builder::new().random(seed, 64).check(move || {
                let flag = Arc::new(AtomicBool::new(false));
                let flag2 = Arc::clone(&flag);
                let h = thread::spawn(move || flag2.store(true, Ordering::SeqCst));
                if flag.load(Ordering::SeqCst) {
                    // Observed only under schedules that run the child
                    // before the parent's load.
                    hits2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
                h.join().expect("model thread");
            });
            (
                stats.interleavings,
                hits.load(std::sync::atomic::Ordering::SeqCst),
            )
        };
        let a = explore(0xC0FFEE);
        let b = explore(0xC0FFEE);
        assert_eq!(a, b, "same seed must explore the same schedules");
        assert_eq!(a.0, 64);
        let c = explore(0xBEEF);
        // Different seeds give a different (but still deterministic)
        // schedule mix; the run count is fixed either way.
        assert_eq!(c.0, 64);
    }

    #[test]
    fn instrumented_types_degrade_gracefully_outside_a_model() {
        // No active execution: every op must behave exactly like std.
        let n = AtomicUsize::new(1);
        assert_eq!(n.fetch_add(1, Ordering::SeqCst), 1);
        assert_eq!(n.load(Ordering::SeqCst), 2);
        let m = Mutex::new(7u32);
        *m.lock().expect("plain mutex") += 1;
        assert_eq!(*m.lock().expect("plain mutex"), 8);
        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
    }

    #[test]
    fn step_budget_catches_unbounded_loops() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Builder {
                max_steps: 200,
                ..Builder::new()
            }
            .check(|| {
                let n = AtomicUsize::new(0);
                loop {
                    if n.fetch_add(1, Ordering::SeqCst) > 1_000_000 {
                        break;
                    }
                }
            });
        }));
        let msg = failure_message(result);
        assert!(msg.contains("steps"), "unexpected failure: {msg}");
    }
}

//! libMF-style blocked parallel SGD.
//!
//! libMF (and DSGD before it) partitions `R` into a `T × T` grid and runs
//! `T` conflict-free blocks at a time: in rotation `s`, thread `t` owns row
//! block `t` and column block `(t + s) mod T`, so no two threads ever touch
//! the same row of `X` or the same column of `Θ`.  One epoch performs `T`
//! rotations and therefore visits every rating exactly once.

use crate::als_util;
use cumf_core::{Engine, TrainMetrics};
use cumf_linalg::blas::dot;
use cumf_linalg::FactorMatrix;
use cumf_sparse::{split_ranges, Csr, Entry};
use rand::prelude::*;
use std::sync::Arc;

/// Hyper-parameters of the blocked SGD solver.
#[derive(Debug, Clone, PartialEq)]
pub struct LibMfConfig {
    /// Latent dimension `f`.
    pub f: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// L2 regularization.
    pub lambda: f32,
    /// Multiplicative learning-rate decay per epoch.
    pub decay: f32,
    /// Number of worker threads (= grid dimension `T`).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LibMfConfig {
    fn default() -> Self {
        Self {
            f: 32,
            // 0.05 closes the init→mean gap of the recalibrated full-span
            // ratings in a handful of epochs (0.02 was tuned when ratings
            // concentrated near 2.0 and needed smaller steps).
            learning_rate: 0.05,
            lambda: 0.05,
            decay: 0.9,
            threads: 4,
            seed: 42,
        }
    }
}

/// A rating expressed in block-local coordinates.
#[derive(Debug, Clone, Copy)]
struct LocalRating {
    row: u32,
    col: u32,
    val: f32,
}

/// libMF-style blocked SGD solver.
pub struct LibMfSgd {
    config: LibMfConfig,
    train_entries: Vec<Entry>,
    x: FactorMatrix,
    theta: FactorMatrix,
    row_ranges: Vec<(u32, u32)>,
    col_ranges: Vec<(u32, u32)>,
    /// blocks[t][c]: ratings of row block `t` × column block `c`.
    blocks: Vec<Vec<Vec<LocalRating>>>,
    epoch: usize,
}

impl LibMfSgd {
    /// Builds the solver, pre-partitioning the ratings into the `T × T` grid.
    pub fn new(config: LibMfConfig, r: &Csr) -> Self {
        assert!(config.threads >= 1, "at least one thread required");
        let t = config
            .threads
            .min(r.n_rows().max(1) as usize)
            .min(r.n_cols().max(1) as usize);
        let row_ranges = split_ranges(r.n_rows(), t).expect("row partition");
        let col_ranges = split_ranges(r.n_cols(), t).expect("column partition");

        let mut blocks = vec![vec![Vec::new(); t]; t];
        for e in r.iter() {
            let bi = row_ranges.partition_point(|&(_, end)| end <= e.row);
            let bj = col_ranges.partition_point(|&(_, end)| end <= e.col);
            blocks[bi][bj].push(LocalRating {
                row: e.row - row_ranges[bi].0,
                col: e.col - col_ranges[bj].0,
                val: e.val,
            });
        }
        // Shuffle each block once so SGD does not sweep in row-major order.
        let mut rng = StdRng::seed_from_u64(config.seed);
        for row in &mut blocks {
            for block in row {
                for i in (1..block.len()).rev() {
                    let j = rng.random_range(0..=i);
                    block.swap(i, j);
                }
            }
        }

        let mean = als_util::mean_rating(r);
        let x = als_util::init_factors_to_mean(r.n_rows() as usize, config.f, config.seed, mean);
        let theta = als_util::init_factors_to_mean(
            r.n_cols() as usize,
            config.f,
            config.seed ^ 0x5151,
            mean,
        );
        Self {
            config,
            train_entries: r.iter().collect(),
            x,
            theta,
            row_ranges,
            col_ranges,
            blocks,
            epoch: 0,
        }
    }

    /// Number of grid partitions per dimension actually used.
    pub fn grid_dim(&self) -> usize {
        self.row_ranges.len()
    }

    fn split_by_ranges<'a>(
        data: &'a mut [f32],
        ranges: &[(u32, u32)],
        f: usize,
    ) -> Vec<&'a mut [f32]> {
        let mut out = Vec::with_capacity(ranges.len());
        let mut rest = data;
        for &(start, end) in ranges {
            let len = (end - start) as usize * f;
            let (head, tail) = rest.split_at_mut(len);
            out.push(head);
            rest = tail;
        }
        out
    }

    /// One epoch: `T` conflict-free rotations over the block grid.
    pub fn epoch(&mut self) {
        let t = self.grid_dim();
        let f = self.config.f;
        let alpha = self.config.learning_rate * self.config.decay.powi(self.epoch as i32);
        let lambda = self.config.lambda;

        for s in 0..t {
            let x_chunks = Self::split_by_ranges(self.x.data_mut(), &self.row_ranges, f);
            let mut theta_chunks: Vec<Option<&mut [f32]>> =
                Self::split_by_ranges(self.theta.data_mut(), &self.col_ranges, f)
                    .into_iter()
                    .map(Some)
                    .collect();
            std::thread::scope(|scope| {
                for (ti, x_chunk) in x_chunks.into_iter().enumerate() {
                    let cj = (ti + s) % t;
                    let theta_chunk = theta_chunks[cj]
                        .take()
                        .expect("each column block used once per rotation");
                    let block = &self.blocks[ti][cj];
                    scope.spawn(move || {
                        for rating in block {
                            let xo = rating.row as usize * f;
                            let to = rating.col as usize * f;
                            let xu = &mut x_chunk[xo..xo + f];
                            let tv = &mut theta_chunk[to..to + f];
                            let err = rating.val - dot(xu, tv);
                            for k in 0..f {
                                let xk = xu[k];
                                let tk = tv[k];
                                xu[k] = xk + alpha * (err * tk - lambda * xk);
                                tv[k] = tk + alpha * (err * xk - lambda * tk);
                            }
                        }
                    });
                }
            });
        }
        self.epoch += 1;
    }
}

impl Engine for LibMfSgd {
    fn name(&self) -> &'static str {
        "libMF (blocked SGD)"
    }

    fn train_sweep(&mut self) -> f64 {
        self.epoch();
        0.0
    }

    fn x(&self) -> &FactorMatrix {
        &self.x
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert_eq!(x.len(), self.x.len(), "X has the wrong number of rows");
        assert_eq!(
            theta.len(),
            self.theta.len(),
            "Θ has the wrong number of rows"
        );
        assert_eq!(x.rank(), self.config.f, "X has the wrong rank");
        assert_eq!(theta.rank(), self.config.f, "Θ has the wrong rank");
        self.x = x;
        self.theta = theta;
    }

    fn attach_metrics(&mut self, _metrics: Arc<TrainMetrics>) {}

    fn train_rmse(&self) -> f64 {
        self.rmse(&self.train_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::synth::SyntheticConfig;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 200,
            n: 120,
            nnz: 8000,
            rank: 4,
            noise_std: 0.05,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    #[test]
    fn training_error_decreases_over_epochs() {
        let r = ratings();
        let mut solver = LibMfSgd::new(
            LibMfConfig {
                f: 8,
                threads: 4,
                ..Default::default()
            },
            &r,
        );
        let before = solver.train_rmse();
        for _ in 0..10 {
            solver.train_sweep();
        }
        let after = solver.train_rmse();
        assert!(
            after < before * 0.7,
            "libMF should converge: {before} -> {after}"
        );
    }

    #[test]
    fn thread_count_does_not_break_convergence() {
        let r = ratings();
        for threads in [1, 2, 8] {
            let mut solver = LibMfSgd::new(
                LibMfConfig {
                    f: 8,
                    threads,
                    ..Default::default()
                },
                &r,
            );
            for _ in 0..6 {
                solver.train_sweep();
            }
            assert!(
                solver.train_rmse() < 0.6,
                "{threads}-thread run failed to converge"
            );
        }
    }

    #[test]
    fn grid_dim_is_clamped_to_matrix_size() {
        let r = SyntheticConfig {
            m: 3,
            n: 100,
            nnz: 200,
            ..Default::default()
        }
        .generate()
        .to_csr();
        let solver = LibMfSgd::new(
            LibMfConfig {
                threads: 16,
                ..Default::default()
            },
            &r,
        );
        assert!(solver.grid_dim() <= 3);
    }

    #[test]
    fn blocks_cover_every_rating_exactly_once() {
        let r = ratings();
        let solver = LibMfSgd::new(
            LibMfConfig {
                threads: 5,
                ..Default::default()
            },
            &r,
        );
        let total: usize = solver
            .blocks
            .iter()
            .flat_map(|row| row.iter().map(|b| b.len()))
            .sum();
        assert_eq!(total, r.nnz());
    }

    #[test]
    fn solver_name_is_stable() {
        let r = ratings();
        let solver = LibMfSgd::new(LibMfConfig::default(), &r);
        assert!(solver.name().contains("libMF"));
    }
}

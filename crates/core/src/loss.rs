//! Objective and error metrics.
//!
//! The paper minimizes the weighted-λ-regularized squared error (equation 1)
//! and reports test RMSE (Figures 6–10).

use cumf_linalg::blas::{dot, norm_sq};
use cumf_linalg::FactorMatrix;
use cumf_sparse::{Csr, Entry};
use rayon::prelude::*;

/// Predicted rating for `(u, v)`.
#[inline]
pub fn predict(x: &FactorMatrix, theta: &FactorMatrix, u: u32, v: u32) -> f32 {
    dot(x.vector(u as usize), theta.vector(v as usize))
}

/// Root-mean-square error over an explicit list of held-out ratings.
pub fn rmse(x: &FactorMatrix, theta: &FactorMatrix, entries: &[Entry]) -> f64 {
    if entries.is_empty() {
        return 0.0;
    }
    let se: f64 = entries
        .par_iter()
        .map(|e| {
            let err = e.val - predict(x, theta, e.row, e.col);
            (err as f64) * (err as f64)
        })
        .sum();
    (se / entries.len() as f64).sqrt()
}

/// Root-mean-square error over the stored entries of a sparse matrix
/// (training RMSE).
pub fn rmse_csr(x: &FactorMatrix, theta: &FactorMatrix, r: &Csr) -> f64 {
    if r.nnz() == 0 {
        return 0.0;
    }
    let se: f64 = (0..r.n_rows() as usize)
        .into_par_iter()
        .map(|u| {
            let (cols, vals) = r.row(u as u32);
            let xu = x.vector(u);
            let mut acc = 0.0f64;
            for (&v, &val) in cols.iter().zip(vals.iter()) {
                let err = val - dot(xu, theta.vector(v as usize));
                acc += (err as f64) * (err as f64);
            }
            acc
        })
        .sum();
    (se / r.nnz() as f64).sqrt()
}

/// The full objective `J` of equation (1): squared error plus
/// weighted-λ-regularization, where each row's penalty is scaled by its
/// number of ratings (`n_{x_u}`, `n_{θ_v}`).
pub fn objective(x: &FactorMatrix, theta: &FactorMatrix, r: &Csr, lambda: f32) -> f64 {
    let squared_error: f64 = (0..r.n_rows() as usize)
        .into_par_iter()
        .map(|u| {
            let (cols, vals) = r.row(u as u32);
            let xu = x.vector(u);
            let mut acc = 0.0f64;
            for (&v, &val) in cols.iter().zip(vals.iter()) {
                let err = val - dot(xu, theta.vector(v as usize));
                acc += (err as f64) * (err as f64);
            }
            acc
        })
        .sum();

    let col_degrees = cumf_sparse::stats::col_degrees(r);
    let x_penalty: f64 = (0..r.n_rows() as usize)
        .into_par_iter()
        .map(|u| r.nnz_row(u as u32) as f64 * norm_sq(x.vector(u)) as f64)
        .sum();
    let theta_penalty: f64 = (0..r.n_cols() as usize)
        .into_par_iter()
        .map(|v| col_degrees[v] as f64 * norm_sq(theta.vector(v)) as f64)
        .sum();

    squared_error + lambda as f64 * (x_penalty + theta_penalty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_sparse::Coo;

    fn tiny() -> (FactorMatrix, FactorMatrix, Csr) {
        // Exact rank-1 structure: r_uv = u_factor * v_factor.
        let x = FactorMatrix::from_vec(2, 1, vec![1.0, 2.0]);
        let theta = FactorMatrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let mut coo = Coo::new(2, 3);
        for u in 0..2u32 {
            for v in 0..3u32 {
                let val = (u + 1) as f32 * (v + 1) as f32;
                coo.push(u, v, val).unwrap();
            }
        }
        (x, theta, coo.to_csr())
    }

    #[test]
    fn perfect_model_has_zero_rmse() {
        let (x, theta, r) = tiny();
        assert!(rmse_csr(&x, &theta, &r) < 1e-6);
        let entries: Vec<Entry> = r.iter().collect();
        assert!(rmse(&x, &theta, &entries) < 1e-6);
    }

    #[test]
    fn known_error_rmse() {
        let (x, theta, _) = tiny();
        // One observation off by 2.0 => RMSE = 2.
        let entries = vec![Entry::new(0, 0, 3.0)];
        assert!((rmse(&x, &theta, &entries) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_test_set_is_zero() {
        let (x, theta, _) = tiny();
        assert_eq!(rmse(&x, &theta, &[]), 0.0);
    }

    #[test]
    fn objective_is_regularization_only_for_perfect_fit() {
        let (x, theta, r) = tiny();
        let j0 = objective(&x, &theta, &r, 0.0);
        assert!(j0 < 1e-9, "zero lambda, perfect fit: J = {j0}");
        let j = objective(&x, &theta, &r, 0.1);
        // Weighted penalty: sum_u n_xu*|x_u|^2 = 3*(1)+3*(4) = 15;
        // sum_v n_tv*|t_v|^2 = 2*(1+4+9) = 28; J = 0.1*43 = 4.3
        assert!((j - 4.3).abs() < 1e-4, "J = {j}");
    }

    #[test]
    fn objective_increases_with_worse_fit() {
        let (x, theta, r) = tiny();
        let bad_x = FactorMatrix::from_vec(2, 1, vec![5.0, -1.0]);
        assert!(objective(&bad_x, &theta, &r, 0.05) > objective(&x, &theta, &r, 0.05));
    }

    #[test]
    fn predict_matches_dot_product() {
        let (x, theta, _) = tiny();
        assert_eq!(predict(&x, &theta, 1, 2), 6.0);
    }
}

//! Schedule-exploring model checks for the wait-free histogram.
//!
//! Compiled only under `--cfg cumf_model_check` (see `crates/obs/src/sync.rs`):
//! the histogram then runs on loom's instrumented atomics and every test
//! below explores the interleavings of its lock-free paths.  Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg cumf_model_check" CARGO_TARGET_DIR=target/model \
//!     cargo test -p cumf-obs --test model_check
//! ```
#![cfg(cumf_model_check)]

use cumf_obs::{Histogram, HistogramSnapshot};
use loom::sync::Arc;
use loom::thread;

fn bucket_total(snap: &HistogramSnapshot) -> u64 {
    snap.nonzero_buckets().map(|(_, _, n)| n).sum()
}

/// Invariant: `record_ns` is wait-free but never *lossy* — every recorded
/// value lands in exactly one bucket and bumps the count exactly once, no
/// matter how two recorders interleave (the per-field `fetch_add`s cannot
/// lose updates, and the saturating CAS loop on `sum` must retry through
/// contention rather than drop an addend).
#[test]
fn concurrent_records_never_lose_counts() {
    let stats = loom::Builder::new().preemption_bound(3).check(|| {
        let h = Arc::new(Histogram::new());
        let h2 = Arc::clone(&h);
        let t = thread::spawn(move || {
            h2.record_ns(100);
            h2.record_ns(3_000);
        });
        h.record_ns(250);
        h.record_ns(70_000);
        t.join().expect("model thread");
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4, "a record was lost");
        assert_eq!(bucket_total(&snap), 4, "a bucket increment was lost");
        assert_eq!(
            snap.sum_ns(),
            100 + 3_000 + 250 + 70_000,
            "sum CAS lost an addend"
        );
        assert_eq!(snap.max_ns(), 70_000);
        assert_eq!(snap.min_ns(), 100);
    });
    assert!(
        stats.interleavings >= 100,
        "scenario explored only {} interleavings",
        stats.interleavings
    );
    assert!(!stats.nondeterminism, "model closure must be deterministic");
}

/// Invariant: a snapshot taken mid-record never *under*counts its own
/// buckets.  `record_ns` increments the bucket before the count and
/// `snapshot` reads the count before the buckets, so a torn read can only
/// show `bucket_total >= count` — quantile ranks then stay within the
/// admitted one-sided error instead of walking off the end of the
/// distribution.  The bucket loads make this state space too wide to
/// enumerate, so it runs under the seeded random strategy.
#[test]
fn torn_snapshot_never_undercounts_buckets() {
    let stats = loom::Builder::new().random(0x5EED_0B50, 300).check(|| {
        let h = Arc::new(Histogram::new());
        let h2 = Arc::clone(&h);
        let t = thread::spawn(move || {
            h2.record_ns(500);
            h2.record_ns(9_000);
            h2.record_ns(123_456);
        });
        // Snapshot races the recorder: torn reads are expected and must
        // stay on the documented side of the invariant.
        let snap = h.snapshot();
        assert!(
            bucket_total(&snap) >= snap.count(),
            "snapshot undercounted: {} buckets vs count {}",
            bucket_total(&snap),
            snap.count()
        );
        t.join().expect("model thread");
        let settled = h.snapshot();
        assert_eq!(settled.count(), 3);
        assert_eq!(bucket_total(&settled), 3);
    });
    assert!(stats.interleavings >= 100);
}

/// Invariant: concurrent `merge`s into one destination conserve totals —
/// the per-bucket `fetch_add`s and the count/sum folds from two sources
/// interleave without losing either side's contribution.
#[test]
fn concurrent_merges_conserve_totals() {
    let stats = loom::Builder::new().random(0xC0FFEE42, 150).check(|| {
        let a = Histogram::new();
        a.record_ns(100);
        a.record_ns(2_000);
        let b = Histogram::new();
        b.record_ns(50_000);
        let dest = Arc::new(Histogram::new());
        let dest2 = Arc::clone(&dest);
        let a = Arc::new(a);
        let b = Arc::new(b);
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || dest2.merge(&a2));
        dest.merge(&b);
        t.join().expect("model thread");
        let snap = dest.snapshot();
        assert_eq!(snap.count(), 3, "merge lost a count");
        assert_eq!(bucket_total(&snap), 3, "merge lost a bucket");
        assert_eq!(snap.sum_ns(), 100 + 2_000 + 50_000, "merge lost sum");
    });
    assert!(stats.interleavings >= 100);
}

//! Property-based tests on the sparse-matrix substrate: format round trips,
//! transpose involution, and partition completeness.

use cumf_sparse::{grid_partition, horizontal_partition, vertical_partition, Coo, Csr, Entry};
use proptest::prelude::*;

/// Strategy producing a random de-duplicated COO matrix with the given
/// maximum shape and density.
fn arb_coo(max_rows: u32, max_cols: u32, max_nnz: usize) -> impl Strategy<Value = Coo> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(move |(m, n)| {
        proptest::collection::vec(
            (0..m, 0..n, -10.0f32..10.0f32).prop_map(|(r, c, v)| Entry::new(r, c, v)),
            0..=max_nnz,
        )
        .prop_map(move |entries| {
            let mut coo = Coo::from_entries(m, n, entries).unwrap();
            coo.dedup();
            coo
        })
    })
}

fn sorted_triplets(csr: &Csr) -> Vec<(u32, u32, f32)> {
    let mut t: Vec<(u32, u32, f32)> = csr.iter().map(|e| (e.row, e.col, e.val)).collect();
    t.sort_by_key(|a| (a.0, a.1));
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_csr_roundtrip_preserves_entries(coo in arb_coo(40, 40, 200)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.nnz(), coo.nnz());
        let mut original: Vec<(u32, u32, f32)> =
            coo.entries().iter().map(|e| (e.row, e.col, e.val)).collect();
        original.sort_by_key(|a| (a.0, a.1));
        prop_assert_eq!(original, sorted_triplets(&csr));
    }

    #[test]
    fn csr_csc_roundtrip(coo in arb_coo(30, 30, 150)) {
        let csr = coo.to_csr();
        let back = csr.to_csc().to_csr();
        prop_assert_eq!(csr, back);
    }

    #[test]
    fn transpose_is_involution(coo in arb_coo(30, 30, 150)) {
        let csr = coo.to_csr();
        prop_assert_eq!(csr.clone(), csr.transpose().transpose());
    }

    #[test]
    fn transpose_swaps_coordinates(coo in arb_coo(20, 20, 80)) {
        let csr = coo.to_csr();
        let t = csr.transpose();
        for e in csr.iter() {
            prop_assert_eq!(t.get(e.col, e.row), Some(e.val));
        }
    }

    #[test]
    fn horizontal_partition_is_complete(
        coo in arb_coo(32, 32, 150),
        q in 1usize..6,
    ) {
        let csr = coo.to_csr();
        let q = q.min(csr.n_rows() as usize).max(1);
        let blocks = horizontal_partition(&csr, q).unwrap();
        let total: usize = blocks.iter().map(|b| b.nnz()).sum();
        prop_assert_eq!(total, csr.nnz());
        // Each entry is recoverable at its translated position.
        for e in csr.iter() {
            let hits = blocks.iter().filter(|b| {
                e.row >= b.row_start && e.row < b.row_start + b.n_rows()
                    && b.csr.get(e.row - b.row_start, e.col) == Some(e.val)
            }).count();
            prop_assert_eq!(hits, 1);
        }
    }

    #[test]
    fn vertical_partition_is_complete(
        coo in arb_coo(32, 32, 150),
        p in 1usize..6,
    ) {
        let csr = coo.to_csr();
        let p = p.min(csr.n_cols() as usize).max(1);
        let blocks = vertical_partition(&csr, p).unwrap();
        let total: usize = blocks.iter().map(|b| b.nnz()).sum();
        prop_assert_eq!(total, csr.nnz());
    }

    #[test]
    fn grid_partition_is_complete(
        coo in arb_coo(24, 24, 120),
        p in 1usize..5,
        q in 1usize..5,
    ) {
        let csr = coo.to_csr();
        let p = p.min(csr.n_cols() as usize).max(1);
        let q = q.min(csr.n_rows() as usize).max(1);
        let grid = grid_partition(&csr, p, q).unwrap();
        prop_assert_eq!(grid.total_nnz(), csr.nnz());
        // Block shapes tile the matrix exactly.
        let row_sum: u32 = (0..q).map(|j| grid.row_range(j).1 - grid.row_range(j).0).sum();
        let col_sum: u32 = (0..p).map(|i| grid.col_range(i).1 - grid.col_range(i).0).sum();
        prop_assert_eq!(row_sum, csr.n_rows());
        prop_assert_eq!(col_sum, csr.n_cols());
    }

    #[test]
    fn row_and_col_degrees_sum_to_nnz(coo in arb_coo(30, 30, 150)) {
        let csr = coo.to_csr();
        let rs: usize = cumf_sparse::stats::row_degrees(&csr).iter().sum();
        let cs: usize = cumf_sparse::stats::col_degrees(&csr).iter().sum();
        prop_assert_eq!(rs, csr.nnz());
        prop_assert_eq!(cs, csr.nnz());
    }
}

//! Property-based tests for the dense linear-algebra substrate.

use cumf_linalg::blas::{add_diagonal, dot, gemv, symmetrize_upper, syr_full, syr_upper};
use cumf_linalg::cholesky::{cholesky_solve, residual_norm};
use cumf_linalg::{batch_solve, DenseMatrix, FactorMatrix};
use proptest::prelude::*;

/// A strategy for an SPD system built the way ALS builds them: a sum of
/// rank-1 outer products plus a positive ridge.
fn arb_spd_system(max_f: usize) -> impl Strategy<Value = (usize, Vec<f32>, Vec<f32>)> {
    (2..=max_f).prop_flat_map(|f| {
        let terms = 2 * f;
        (
            Just(f),
            proptest::collection::vec(-1.0f32..1.0, terms * f),
            proptest::collection::vec(-1.0f32..1.0, f),
            0.05f32..2.0,
        )
            .prop_map(move |(f, vecs, b, lambda)| {
                let mut a = vec![0.0f32; f * f];
                for chunk in vecs.chunks(f) {
                    syr_full(&mut a, chunk);
                }
                add_diagonal(&mut a, f, lambda);
                (f, a, b)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cholesky_solves_als_style_systems((f, a, b) in arb_spd_system(24)) {
        let mut a_work = a.clone();
        let mut x = b.clone();
        cholesky_solve(&mut a_work, f, &mut x).unwrap();
        let res = residual_norm(&a, f, &x, &b);
        let scale = b.iter().map(|&v| (v as f64).abs()).sum::<f64>().max(1.0);
        prop_assert!(res / scale < 5e-3, "f={} residual={}", f, res);
    }

    #[test]
    fn syr_upper_symmetrized_equals_syr_full(x in proptest::collection::vec(-2.0f32..2.0, 1..20)) {
        let f = x.len();
        let mut full = vec![0.0f32; f * f];
        syr_full(&mut full, &x);
        let mut up = vec![0.0f32; f * f];
        syr_upper(&mut up, &x);
        symmetrize_upper(&mut up, f);
        for (a, b) in full.iter().zip(up.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn dot_is_commutative_and_bilinear(
        x in proptest::collection::vec(-10.0f32..10.0, 1..32),
        alpha in -3.0f32..3.0,
    ) {
        let y: Vec<f32> = x.iter().rev().copied().collect();
        prop_assert!((dot(&x, &y) - dot(&y, &x)).abs() < 1e-3);
        let scaled: Vec<f32> = x.iter().map(|v| v * alpha).collect();
        prop_assert!((dot(&scaled, &y) - alpha * dot(&x, &y)).abs() < 2e-2 * (1.0 + dot(&x, &y).abs()));
    }

    #[test]
    fn gemv_matches_dense_matmul(
        rows in 1usize..8, cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        let a = FactorMatrix::random(rows, cols, 1.0, seed);
        let x = FactorMatrix::random(1, cols, 1.0, seed + 1);
        let mut y = vec![0.0f32; rows];
        gemv(a.data(), rows, cols, x.vector(0), &mut y);
        let am = DenseMatrix::from_vec(rows, cols, a.data().to_vec());
        let xm = DenseMatrix::from_vec(cols, 1, x.data().to_vec());
        let expect = am.matmul(&xm);
        for (i, &yi) in y.iter().enumerate() {
            prop_assert!((yi - expect.get(i, 0)).abs() < 1e-4);
        }
    }

    #[test]
    fn batch_solve_matches_individual_solves(
        batch in 1usize..8,
        f in 2usize..10,
        seed in 0u64..500,
    ) {
        // Build `batch` SPD systems deterministically from the seed.
        let gen = FactorMatrix::random(batch * 3, f, 1.0, seed);
        let rhs_gen = FactorMatrix::random(batch, f, 1.0, seed + 7);
        let mut hermitians = vec![0.0f32; batch * f * f];
        let mut rhs = vec![0.0f32; batch * f];
        for i in 0..batch {
            let a = &mut hermitians[i * f * f..(i + 1) * f * f];
            for t in 0..3 {
                syr_full(a, gen.vector(i * 3 + t));
            }
            add_diagonal(a, f, 0.3);
            rhs[i * f..(i + 1) * f].copy_from_slice(rhs_gen.vector(i));
        }
        let orig_a = hermitians.clone();
        let orig_b = rhs.clone();
        let report = batch_solve(&mut hermitians, &mut rhs, f);
        prop_assert!(report.all_ok());
        for i in 0..batch {
            let mut a = orig_a[i * f * f..(i + 1) * f * f].to_vec();
            let mut x = orig_b[i * f..(i + 1) * f].to_vec();
            cholesky_solve(&mut a, f, &mut x).unwrap();
            for (got, want) in rhs[i * f..(i + 1) * f].iter().zip(x.iter()) {
                prop_assert!((got - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transpose_involution_dense(rows in 1usize..10, cols in 1usize..10, seed in 0u64..100) {
        let fm = FactorMatrix::random(rows, cols, 1.0, seed);
        let m = DenseMatrix::from_vec(rows, cols, fm.data().to_vec());
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}

//! Per-iteration time models for the distributed baseline systems.
//!
//! These are the "closed-source comparator" substitutions: SparkALS,
//! Factorbird, NOMAD-on-a-cluster and Facebook's Giraph solution cannot be
//! run here, so each gets an analytic compute + communication + framework
//! model.  The efficiency and overhead constants are calibrated so that the
//! models land near the per-iteration numbers the respective papers publish
//! (SparkALS ≈ 240 s, Factorbird ≈ 563 s — see §5.5 of the cuMF paper);
//! the *relative* comparisons of Table 1 and Figure 11 then follow from the
//! same formulas cuMF itself is priced with.

use crate::network::ClusterNetwork;
use crate::node::NodeSpec;
use cumf_data::datasets::DatasetSpec;

/// Which baseline system is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineSystem {
    /// Spark MLlib ALS on 50 × m3.2xlarge (the SparkALS benchmark blog).
    SparkAls50,
    /// Factorbird parameter-server SGD on 50 nodes (c3.2xlarge-class).
    Factorbird50,
    /// NOMAD on a 32-node AWS (m3.xlarge) cluster.
    NomadAws32,
    /// NOMAD on a 64-node HPC cluster.
    NomadHpc64,
    /// NOMAD on a single 30-core machine (the §5.2 baseline).
    NomadSingle30,
    /// libMF on a single 30-core machine (the §5.2 baseline).
    LibMfSingle30,
    /// Facebook's Giraph-based ALS on 50 workers.
    FacebookGiraph50,
}

/// Breakdown of one modelled iteration (ALS iteration or SGD epoch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEstimate {
    /// Arithmetic time, seconds.
    pub compute_s: f64,
    /// Communication time, seconds.
    pub comm_s: f64,
    /// Framework overhead (task scheduling, serialization, JVM), seconds.
    pub overhead_s: f64,
}

impl IterationEstimate {
    /// Total modelled seconds per iteration.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s + self.overhead_s
    }
}

impl BaselineSystem {
    /// All modelled systems.
    pub fn all() -> [BaselineSystem; 7] {
        [
            BaselineSystem::SparkAls50,
            BaselineSystem::Factorbird50,
            BaselineSystem::NomadAws32,
            BaselineSystem::NomadHpc64,
            BaselineSystem::NomadSingle30,
            BaselineSystem::LibMfSingle30,
            BaselineSystem::FacebookGiraph50,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineSystem::SparkAls50 => "SparkALS (50 x m3.2xlarge)",
            BaselineSystem::Factorbird50 => "Factorbird (50 x c3.2xlarge)",
            BaselineSystem::NomadAws32 => "NOMAD (32 x m3.xlarge)",
            BaselineSystem::NomadHpc64 => "NOMAD (64-node HPC)",
            BaselineSystem::NomadSingle30 => "NOMAD (30 cores)",
            BaselineSystem::LibMfSingle30 => "libMF (30 cores)",
            BaselineSystem::FacebookGiraph50 => "Facebook Giraph (50 workers)",
        }
    }

    /// The cluster the system runs on.
    pub fn cluster(&self) -> ClusterNetwork {
        match self {
            BaselineSystem::SparkAls50 => {
                let mut c = ClusterNetwork::new(NodeSpec::m3_2xlarge(), 50);
                c.latency_s = 50e-3; // Spark task-launch granularity
                c
            }
            BaselineSystem::Factorbird50 => {
                let mut c = ClusterNetwork::new(NodeSpec::c3_2xlarge(), 50);
                c.latency_s = 5e-3;
                c
            }
            BaselineSystem::NomadAws32 => ClusterNetwork::new(NodeSpec::m3_xlarge(), 32),
            BaselineSystem::NomadHpc64 => ClusterNetwork::new(NodeSpec::hpc_node(), 64),
            BaselineSystem::NomadSingle30 | BaselineSystem::LibMfSingle30 => {
                ClusterNetwork::new(NodeSpec::bare_metal_30core(), 1)
            }
            BaselineSystem::FacebookGiraph50 => {
                let mut c = ClusterNetwork::new(NodeSpec::m3_2xlarge(), 50);
                c.latency_s = 20e-3;
                c
            }
        }
    }

    /// Is the modelled algorithm SGD (an "iteration" is one epoch) rather
    /// than ALS?
    pub fn is_sgd(&self) -> bool {
        matches!(
            self,
            BaselineSystem::Factorbird50
                | BaselineSystem::NomadAws32
                | BaselineSystem::NomadHpc64
                | BaselineSystem::NomadSingle30
                | BaselineSystem::LibMfSingle30
        )
    }

    /// Fraction of peak FLOP/s the system sustains on this workload
    /// (irregular sparse access; JVM systems pay extra).
    fn compute_efficiency(&self) -> f64 {
        match self {
            BaselineSystem::SparkAls50 => 0.03,
            BaselineSystem::Factorbird50 => 0.05,
            BaselineSystem::NomadAws32 | BaselineSystem::NomadHpc64 => 0.12,
            BaselineSystem::NomadSingle30 | BaselineSystem::LibMfSingle30 => 0.20,
            BaselineSystem::FacebookGiraph50 => 0.04,
        }
    }

    /// Fraction of the node's streaming memory bandwidth the workload
    /// sustains: single-machine blocked SGD is cache-friendly, while
    /// distributed SGD with remote factor access and ALS shuffles waste most
    /// of each cache line on random access.
    fn memory_efficiency(&self) -> f64 {
        match self {
            BaselineSystem::NomadSingle30 | BaselineSystem::LibMfSingle30 => 0.7,
            BaselineSystem::SparkAls50 | BaselineSystem::FacebookGiraph50 => 0.4,
            _ => 0.3,
        }
    }

    /// Fixed per-iteration framework overhead in seconds.
    fn framework_overhead_s(&self) -> f64 {
        match self {
            BaselineSystem::SparkAls50 => 60.0,
            BaselineSystem::Factorbird50 => 10.0,
            BaselineSystem::NomadAws32 | BaselineSystem::NomadHpc64 => 1.0,
            BaselineSystem::NomadSingle30 | BaselineSystem::LibMfSingle30 => 0.05,
            BaselineSystem::FacebookGiraph50 => 45.0,
        }
    }

    /// The per-iteration time the original publication reports for its own
    /// headline workload, when the cuMF paper quotes one.
    pub fn published_seconds_per_iteration(&self) -> Option<f64> {
        match self {
            BaselineSystem::SparkAls50 => Some(240.0),
            BaselineSystem::Factorbird50 => Some(563.0),
            _ => None,
        }
    }

    /// Models one iteration (ALS) or one epoch (SGD) on the given data set
    /// at latent dimension `f`.
    pub fn iteration_time(&self, data: &DatasetSpec, f: u32) -> IterationEstimate {
        let cluster = self.cluster();
        let nz = data.nz as f64;
        let m = data.m as f64;
        let n = data.n as f64;
        let f = f as f64;

        let (flops, comm_bytes_per_node) = if self.is_sgd() {
            // One SGD epoch: ~10·f flops per rating; communication circulates
            // item factors (NOMAD) or pushes/pulls both factor updates
            // (parameter server).
            let flops = 10.0 * f * nz;
            let comm = match self {
                BaselineSystem::Factorbird50 => {
                    // A parameter server pulls and pushes both factor vectors
                    // for every rating it processes (x_u and θ_v, f floats
                    // each, in both directions).
                    4.0 * nz * f * 4.0 / cluster.n_nodes as f64
                }
                _ => n * f * 4.0, // column circulation
            };
            (flops, comm)
        } else {
            // One ALS iteration: the Table 3 cost for both halves, plus the
            // shuffle of factor partitions to where the ratings live.
            let flops = 2.0 * nz * f * (f + 1.0) + (m + n) * f * f * f;
            let replication = (cluster.n_nodes as f64).sqrt().max(1.0);
            let comm = ((m + n) * f * 4.0 * replication + 2.0 * nz * 4.0) / cluster.n_nodes as f64;
            (flops, comm)
        };

        // Compute: bounded by the lower of flops and memory streams.
        let total_gflops = cluster.total_gflops(self.compute_efficiency());
        let compute_flop_s = flops / (total_gflops * 1e9);
        let bytes_touched = nz * f * 4.0 * 3.0;
        let compute_mem_s = bytes_touched
            / (cluster.node.mem_bw_gbs * 1e9 * self.memory_efficiency() * cluster.n_nodes as f64);
        let compute_s = compute_flop_s.max(compute_mem_s);

        let comm_s = cluster.shuffle_time(comm_bytes_per_node);

        IterationEstimate {
            compute_s,
            comm_s,
            overhead_s: self.framework_overhead_s(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumf_data::datasets::PaperDataset;

    #[test]
    fn sparkals_model_lands_near_the_published_240s() {
        let data = PaperDataset::SparkAls.spec();
        let est = BaselineSystem::SparkAls50.iteration_time(&data, 10);
        let published = BaselineSystem::SparkAls50
            .published_seconds_per_iteration()
            .unwrap();
        let ratio = est.total_s() / published;
        assert!(
            (0.3..3.0).contains(&ratio),
            "SparkALS model {} s vs published {} s (ratio {ratio})",
            est.total_s(),
            published
        );
    }

    #[test]
    fn factorbird_model_lands_near_the_published_563s() {
        let data = PaperDataset::Factorbird.spec();
        let est = BaselineSystem::Factorbird50.iteration_time(&data, 5);
        let published = BaselineSystem::Factorbird50
            .published_seconds_per_iteration()
            .unwrap();
        let ratio = est.total_s() / published;
        assert!(
            (0.3..3.0).contains(&ratio),
            "Factorbird model {} s vs published {} s (ratio {ratio})",
            est.total_s(),
            published
        );
    }

    #[test]
    fn hpc_nomad_is_faster_than_aws_nomad_on_hugewiki() {
        // Figure 10: the 64-node HPC cluster converges much faster than the
        // 32-node AWS cluster.
        let data = PaperDataset::Hugewiki.spec();
        let aws = BaselineSystem::NomadAws32
            .iteration_time(&data, 100)
            .total_s();
        let hpc = BaselineSystem::NomadHpc64
            .iteration_time(&data, 100)
            .total_s();
        assert!(hpc < aws * 0.5, "HPC {hpc} s vs AWS {aws} s");
    }

    #[test]
    fn single_machine_sgd_epoch_on_netflix_is_seconds() {
        // §5.2: libMF/NOMAD run Netflix on one 30-core box with epochs of a
        // few seconds (their published convergence happens within a minute).
        let data = PaperDataset::Netflix.spec();
        for sys in [BaselineSystem::LibMfSingle30, BaselineSystem::NomadSingle30] {
            let t = sys.iteration_time(&data, 100).total_s();
            assert!(t > 0.3 && t < 60.0, "{}: {t} s per epoch", sys.name());
        }
    }

    #[test]
    fn every_system_produces_positive_estimates() {
        let data = PaperDataset::Netflix.spec();
        for sys in BaselineSystem::all() {
            let est = sys.iteration_time(&data, 50);
            assert!(est.compute_s > 0.0);
            assert!(est.total_s() >= est.compute_s);
            assert!(!sys.name().is_empty());
        }
    }

    #[test]
    fn sgd_systems_are_flagged() {
        assert!(BaselineSystem::NomadAws32.is_sgd());
        assert!(!BaselineSystem::SparkAls50.is_sgd());
        assert!(!BaselineSystem::FacebookGiraph50.is_sgd());
    }
}

//! Benchmarks of the figure/table generators themselves plus the pure
//! cost-model computations: Table 1, Table 3, Figure 2, Figure 11, the
//! §4.2 reduction ablation and the §3.3 bin-size ablation.  These are the
//! harness targets listed in DESIGN.md's per-experiment index; the heavier
//! convergence figures (6–10) are exercised in their quick configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use cumf_bench::experiments::{self as exp, ExperimentConfig};
use cumf_core::costmodel::{cumf_iteration_cost, ClusterConfig};
use cumf_core::planner::ProblemDims;
use cumf_data::datasets::PaperDataset;
use std::hint::black_box;

fn bench_analytic_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_tables");
    group.bench_function("table1", |b| b.iter(|| black_box(exp::table1())));
    group.bench_function("table3_netflix", |b| {
        b.iter(|| black_box(exp::table3_for(PaperDataset::Netflix, 4096)))
    });
    group.bench_function("fig2", |b| b.iter(|| black_box(exp::fig2())));
    group.bench_function("fig11", |b| b.iter(|| black_box(exp::fig11())));
    group.bench_function("reduction_ablation", |b| {
        b.iter(|| black_box(exp::reduction_ablation()))
    });
    group.bench_function("bin_ablation", |b| {
        b.iter(|| black_box(exp::bin_ablation()))
    });
    group.finish();
}

fn bench_iteration_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_scale_cost_model");
    for ds in [
        PaperDataset::Netflix,
        PaperDataset::Hugewiki,
        PaperDataset::Facebook,
    ] {
        let spec = ds.spec();
        let dims = ProblemDims::new(spec.m, spec.n, spec.nz, spec.f as u64);
        group.bench_function(spec.name, |b| {
            b.iter(|| black_box(cumf_iteration_cost(&dims, &ClusterConfig::four_k80())))
        });
    }
    group.finish();
}

fn bench_quick_convergence_figures(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let mut group = c.benchmark_group("convergence_figures_quick");
    group.sample_size(10);
    group.bench_function("fig6", |b| b.iter(|| black_box(exp::fig6(&cfg))));
    group.bench_function("fig7", |b| b.iter(|| black_box(exp::fig7(&cfg))));
    group.bench_function("fig9", |b| b.iter(|| black_box(exp::fig9(&cfg))));
    group.bench_function("fig10", |b| b.iter(|| black_box(exp::fig10(&cfg))));
    group.finish();
}

criterion_group!(
    figures,
    bench_analytic_tables,
    bench_iteration_cost_model,
    bench_quick_convergence_figures
);
criterion_main!(figures);

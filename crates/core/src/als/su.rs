//! Algorithm 3: SU-ALS, the scale-up multi-GPU engine.
//!
//! SU-ALS layers **data parallelism** on top of ALS's inherent **model
//! parallelism**:
//!
//! * `Θᵀ` is split vertically into `p` partitions, one per GPU;
//! * `X` is split horizontally into `q` batches solved in sequence;
//! * `R` is grid-partitioned into `p × q` blocks so GPU `i` only ever sees
//!   the ratings whose columns live in its `Θᵀ(i)`;
//! * each GPU computes *partial* Hermitians from its local columns
//!   (equation (5)) and the partials are summed with a parallel reduction
//!   before the batch solve.
//!
//! The numerics below are exact (partials are really computed per block and
//! really summed); the simulated time additionally accounts for the
//! host→device streaming of `R` blocks, the cross-GPU reduction (per the
//! selected [`ReductionScheme`]) and the per-GPU batch solves.

use crate::als::kernels::{accumulate_partials, finalize_and_solve, partial_hermitians};
use crate::als::mo::{batch_solve_traffic, get_hermitian_traffic};
use crate::config::AlsConfig;
use crate::instrument::TrainMetrics;
use crate::loss;
use crate::planner::{self, PartitionPlan, ProblemDims};
use crate::reduce::{reduction_time, ReductionScheme};
use cumf_gpu_sim::occupancy::{mo_als_regs_per_thread, mo_als_shared_bytes};
use cumf_gpu_sim::{Endpoint, GpuCluster, Occupancy, Transfer};
use cumf_linalg::FactorMatrix;
use cumf_sparse::{grid_partition, Csr};
use std::sync::Arc;

/// Configuration of the SU-ALS engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SuAlsConfig {
    /// The ALS hyper-parameters shared with every other engine.
    pub als: AlsConfig,
    /// Cross-GPU reduction scheme (§4.2).
    pub reduction: ReductionScheme,
    /// Partitioning override.  `None` asks the planner (equation (8)) to
    /// choose; experiments that want to exercise data parallelism on small
    /// (scaled-down) inputs set this explicitly.
    pub plan: Option<PartitionPlan>,
}

impl SuAlsConfig {
    /// A configuration with the planner left in charge.
    pub fn auto(als: AlsConfig, reduction: ReductionScheme) -> Self {
        Self {
            als,
            reduction,
            plan: None,
        }
    }

    /// A configuration with an explicit `(p, q)` partitioning.
    pub fn with_plan(als: AlsConfig, reduction: ReductionScheme, p: usize, q: usize) -> Self {
        Self {
            als,
            reduction,
            plan: Some(PartitionPlan { p, q }),
        }
    }
}

/// Simulated timing breakdown of one SU-ALS side update.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SuSideTiming {
    /// Host→device streaming of `R` blocks that could not be hidden.
    pub transfer_s: f64,
    /// `get_hermitian` kernels (max over the GPUs of each wave, summed over
    /// batches).
    pub get_hermitian_s: f64,
    /// Cross-GPU reductions.
    pub reduce_s: f64,
    /// Batch solves.
    pub batch_solve_s: f64,
}

impl SuSideTiming {
    /// Total simulated seconds.
    pub fn total(&self) -> f64 {
        self.transfer_s + self.get_hermitian_s + self.reduce_s + self.batch_solve_s
    }
}

/// Per-iteration statistics of SU-ALS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuIterationStats {
    /// Timing of the update-X half.
    pub update_x: SuSideTiming,
    /// Timing of the update-Θ half.
    pub update_theta: SuSideTiming,
}

impl SuIterationStats {
    /// Total simulated seconds of the iteration.
    pub fn total(&self) -> f64 {
        self.update_x.total() + self.update_theta.total()
    }
}

/// The scale-up multi-GPU ALS engine (Algorithm 3).
#[derive(Debug, Clone)]
pub struct SuAlsEngine {
    config: SuAlsConfig,
    cluster: GpuCluster,
    r: Csr,
    r_t: Csr,
    x: FactorMatrix,
    theta: FactorMatrix,
    plan_x: PartitionPlan,
    plan_theta: PartitionPlan,
    total_sim_s: f64,
    metrics: Option<Arc<TrainMetrics>>,
}

impl SuAlsEngine {
    /// Creates the engine.  The partitioning is taken from the configuration
    /// or computed by the planner against the device's memory capacity.
    pub fn new(config: SuAlsConfig, r: Csr, cluster: GpuCluster) -> Self {
        config.als.validate();
        let f = config.als.f;
        let n_gpus = cluster.n_gpus();

        let plan_for = |rows: u64, cols: u64| -> PartitionPlan {
            if let Some(p) = config.plan {
                return p;
            }
            let dims = ProblemDims::new(rows, cols, r.nnz() as u64, f as u64);
            planner::plan(&dims, cluster.spec(), n_gpus.max(1) * 8, 1 << 20).unwrap_or(
                PartitionPlan {
                    p: n_gpus,
                    q: n_gpus,
                },
            )
        };
        let plan_x = plan_for(r.n_rows() as u64, r.n_cols() as u64);
        let plan_theta = plan_for(r.n_cols() as u64, r.n_rows() as u64);

        let scale = 1.0 / (f as f32).sqrt();
        let x = FactorMatrix::random(r.n_rows() as usize, f, scale, config.als.seed);
        let theta =
            FactorMatrix::random(r.n_cols() as usize, f, scale, config.als.seed ^ 0xDEAD_BEEF);
        let r_t = r.transpose();
        Self {
            config,
            cluster,
            r,
            r_t,
            x,
            theta,
            plan_x,
            plan_theta,
            total_sim_s: 0.0,
            metrics: None,
        }
    }

    /// Attaches a shared [`TrainMetrics`] sink.  SU-ALS training solves are
    /// priced by the GPU simulator rather than host-timed, so training
    /// iterations do not record into the sink — only fold-ins driven through
    /// the [`crate::engine::IncrementalEngine`] trait do.
    pub fn attach_metrics(&mut self, metrics: Arc<TrainMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SuAlsConfig {
        &self.config
    }

    /// The partition plan used when updating `X`.
    pub fn plan_x(&self) -> PartitionPlan {
        self.plan_x
    }

    /// The partition plan used when updating `Θ`.
    pub fn plan_theta(&self) -> PartitionPlan {
        self.plan_theta
    }

    /// Current user factors.
    pub fn x(&self) -> &FactorMatrix {
        &self.x
    }

    /// Current item factors.
    pub fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    /// Replaces the current factors (used to resume from a checkpoint).
    pub fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        assert_eq!(x.len(), self.r.n_rows() as usize, "X row count mismatch");
        assert_eq!(
            theta.len(),
            self.r.n_cols() as usize,
            "Θ row count mismatch"
        );
        assert_eq!(x.rank(), self.config.als.f, "X rank mismatch");
        assert_eq!(theta.rank(), self.config.als.f, "Θ rank mismatch");
        self.x = x;
        self.theta = theta;
    }

    /// Accumulated simulated seconds.
    pub fn simulated_time(&self) -> f64 {
        self.total_sim_s
    }

    /// The simulated cluster (for profiling).
    pub fn cluster(&self) -> &GpuCluster {
        &self.cluster
    }

    /// Runs one full ALS iteration (update X, then update Θ) and returns the
    /// simulated timing breakdown.
    pub fn iterate(&mut self) -> SuIterationStats {
        let (new_x, tx) = self.update_side(true);
        self.x = new_x;
        let (new_theta, tt) = self.update_side(false);
        self.theta = new_theta;
        let stats = SuIterationStats {
            update_x: tx,
            update_theta: tt,
        };
        self.total_sim_s += stats.total();
        stats
    }

    /// Training RMSE of the current factors.
    pub fn train_rmse(&self) -> f64 {
        loss::rmse_csr(&self.x, &self.theta, &self.r)
    }

    /// One data-parallel side update.  `solve_x = true` updates `X` from `R`
    /// and `Θ`; `false` updates `Θ` from `Rᵀ` and `X`.
    fn update_side(&mut self, solve_x: bool) -> (FactorMatrix, SuSideTiming) {
        let (r, fixed, plan) = if solve_x {
            (&self.r, &self.theta, self.plan_x)
        } else {
            (&self.r_t, &self.x, self.plan_theta)
        };
        let f = self.config.als.f;
        let lambda = self.config.als.lambda;
        let n_gpus = self.cluster.n_gpus();
        let spec = self.cluster.spec().clone();
        let timing = self.cluster.timing().clone();
        let topo = self.cluster.topology().clone();
        let opts = self.config.als.memory_opt;

        let p = plan.p.max(1).min(r.n_cols().max(1) as usize);
        let q = plan.q.max(1).min(r.n_rows().max(1) as usize);
        let grid = grid_partition(r, p, q).expect("plan produced an invalid partition");

        // Per-partition slices of the fixed factor matrix (Algorithm 3
        // lines 5–7: Θᵀ(i) is copied to GPU i once per side update).
        let fixed_parts: Vec<FactorMatrix> = (0..p)
            .map(|i| {
                let (cs, ce) = grid.col_range(i);
                let mut part = FactorMatrix::zeros((ce - cs) as usize, f);
                for c in cs..ce {
                    part.vector_mut((c - cs) as usize)
                        .copy_from_slice(fixed.vector(c as usize));
                }
                part
            })
            .collect();

        let mut timing_acc = SuSideTiming::default();

        // Distribute Θᵀ(i) to the GPUs (concurrent host→device transfers).
        let theta_transfers: Vec<Transfer> = (0..p)
            .map(|i| {
                let bytes = fixed_parts[i].footprint_words() as f64 * 4.0;
                Transfer::new(Endpoint::Host, Endpoint::Gpu(i % n_gpus), bytes)
            })
            .collect();
        timing_acc.transfer_s += topo.concurrent_transfer_time(&theta_transfers);

        // Occupancy of the get_hermitian launches (same configuration as
        // MO-ALS).
        let gh_occ = Occupancy::compute(
            &spec,
            f as u32,
            mo_als_regs_per_thread(f as u32, opts.use_registers),
            mo_als_shared_bytes(f as u32, opts.bin),
        );
        let bs_occ = Occupancy::compute(&spec, (f as u32).max(32), 56, 0);

        // Simulated busy time per GPU for the kernel phases.  Blocks of the
        // same batch spread across GPUs (data parallelism, `p > 1`); with a
        // single `Θᵀ` partition, different batches spread across GPUs
        // instead (pure model parallelism — the Netflix/YahooMusic setting
        // of §5.4, and the elasticity rule of §4.4 when `p` exceeds the
        // number of physical GPUs).
        let mut gh_busy = vec![0.0f64; n_gpus];
        let mut bs_busy = vec![0.0f64; n_gpus];
        let mut out = FactorMatrix::zeros(r.n_rows() as usize, f);

        for j in 0..q {
            let (rs, re) = grid.row_range(j);
            let batch_rows = (re - rs) as usize;

            // ---- numerics: partial Hermitians per column partition, then reduce ----
            let mut acc_a = vec![0.0f32; batch_rows * f * f];
            let mut acc_b = vec![0.0f32; batch_rows * f];
            let mut batch_gh_max = 0.0f64;
            let mut batch_transfer: Vec<Transfer> = Vec::with_capacity(p);
            for (i, fixed_part) in fixed_parts.iter().enumerate() {
                let gpu = if p > 1 { i % n_gpus } else { j % n_gpus };
                let block = grid.block(i, j);
                let (pa, pb) = partial_hermitians(&block.csr, fixed_part, f);
                accumulate_partials(&mut acc_a, &mut acc_b, &pa, &pb);

                // Simulated kernel time for this block on its GPU.
                let traffic = get_hermitian_traffic(
                    batch_rows as f64,
                    block.nnz() as f64,
                    block.n_cols() as f64,
                    f as f64,
                    &opts,
                );
                let kt = timing.kernel_time(&spec, &traffic, &gh_occ, !opts.use_texture);
                gh_busy[gpu] += kt.total_s;
                batch_gh_max = batch_gh_max.max(kt.total_s);
                self.cluster.run_kernel(gpu, "su_get_hermitian", kt.total_s);

                // Host→device streaming of R^(ij).
                let bytes = block.csr.footprint_words() as f64 * 4.0;
                batch_transfer.push(Transfer::new(Endpoint::Host, Endpoint::Gpu(gpu), bytes));
            }

            // R-block streaming: the first batch is exposed, later batches are
            // prefetched and only cost whatever exceeds the compute time.
            let transfer_s = topo.concurrent_transfer_time(&batch_transfer);
            if j == 0 {
                timing_acc.transfer_s += transfer_s;
            } else {
                timing_acc.transfer_s += (transfer_s - batch_gh_max).max(0.0);
            }

            // ---- reduction across GPUs (only needed with data parallelism) ----
            let bytes_per_gpu = (batch_rows * (f * f + f) * 4) as f64;
            if p > 1 {
                timing_acc.reduce_s += reduction_time(self.config.reduction, &topo, bytes_per_gpu);
            }

            // ---- batch solve ----
            let degrees: Vec<usize> = (rs..re).map(|u| r.nnz_row(u)).collect();
            let solved = finalize_and_solve(&mut acc_a, &mut acc_b, &degrees, lambda, f);
            for (local, u) in (rs..re).enumerate() {
                out.vector_mut(u as usize)
                    .copy_from_slice(solved.vector(local));
            }
            if p > 1 {
                // The batch's systems are split across the p GPUs that already
                // hold the reduced partials (Algorithm 3 line 17).
                let rows_per_gpu = (batch_rows as f64 / p as f64).ceil();
                let bs_traffic = batch_solve_traffic(rows_per_gpu, f as f64);
                let bs_t = timing.kernel_time(&spec, &bs_traffic, &bs_occ, false);
                for i in 0..p {
                    let gpu = i % n_gpus;
                    bs_busy[gpu] += bs_t.total_s;
                    self.cluster.run_kernel(gpu, "su_batch_solve", bs_t.total_s);
                }
            } else {
                let gpu = j % n_gpus;
                let bs_traffic = batch_solve_traffic(batch_rows as f64, f as f64);
                let bs_t = timing.kernel_time(&spec, &bs_traffic, &bs_occ, false);
                bs_busy[gpu] += bs_t.total_s;
                self.cluster.run_kernel(gpu, "su_batch_solve", bs_t.total_s);
            }
        }

        timing_acc.get_hermitian_s = gh_busy.iter().copied().fold(0.0, f64::max);
        timing_acc.batch_solve_s = bs_busy.iter().copied().fold(0.0, f64::max);
        (out, timing_acc)
    }
}

impl crate::engine::Engine for SuAlsEngine {
    fn name(&self) -> &'static str {
        "su-als"
    }

    fn train_sweep(&mut self) -> f64 {
        self.iterate().total()
    }

    fn x(&self) -> &FactorMatrix {
        &self.x
    }

    fn theta(&self) -> &FactorMatrix {
        &self.theta
    }

    fn set_factors(&mut self, x: FactorMatrix, theta: FactorMatrix) {
        SuAlsEngine::set_factors(self, x, theta);
    }

    fn attach_metrics(&mut self, metrics: Arc<TrainMetrics>) {
        SuAlsEngine::attach_metrics(self, metrics);
    }

    fn metrics(&self) -> Option<&TrainMetrics> {
        self.metrics.as_deref()
    }

    fn train_rmse(&self) -> f64 {
        SuAlsEngine::train_rmse(self)
    }
}

impl crate::engine::IncrementalEngine for SuAlsEngine {
    fn fold_in_lambda(&self) -> f32 {
        self.config.als.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::als::BaseAls;
    use crate::config::MemoryOptConfig;
    use cumf_data::synth::SyntheticConfig;

    fn ratings() -> Csr {
        SyntheticConfig {
            m: 160,
            n: 90,
            nnz: 4500,
            rank: 4,
            ..Default::default()
        }
        .generate()
        .to_csr()
    }

    fn als_config() -> AlsConfig {
        AlsConfig {
            f: 12,
            lambda: 0.05,
            iterations: 3,
            memory_opt: MemoryOptConfig::optimized(),
            ..Default::default()
        }
    }

    fn engine(n_gpus: usize, p: usize, q: usize, scheme: ReductionScheme) -> SuAlsEngine {
        let cluster = GpuCluster::titan_x_flat(n_gpus);
        let cfg = SuAlsConfig::with_plan(als_config(), scheme, p, q);
        SuAlsEngine::new(cfg, ratings(), cluster)
    }

    #[test]
    fn su_matches_the_reference_engine() {
        let mut su = engine(2, 2, 3, ReductionScheme::OnePhase);
        let mut base = BaseAls::new(als_config(), ratings());
        for _ in 0..2 {
            su.iterate();
            base.iterate();
        }
        assert!(
            su.x().max_abs_diff(base.x()) < 1e-2,
            "SU-ALS factors should match the reference (diff {})",
            su.x().max_abs_diff(base.x())
        );
        assert!(su.theta().max_abs_diff(base.theta()) < 1e-2);
    }

    #[test]
    fn partitioning_does_not_change_numerics() {
        let mut a = engine(2, 1, 1, ReductionScheme::OnePhase);
        let mut b = engine(4, 4, 2, ReductionScheme::OnePhase);
        a.iterate();
        b.iterate();
        assert!(a.x().max_abs_diff(b.x()) < 1e-2);
        assert!(a.theta().max_abs_diff(b.theta()) < 1e-2);
    }

    #[test]
    fn reduction_scheme_does_not_change_numerics() {
        let mut one = engine(4, 4, 2, ReductionScheme::OnePhase);
        let mut two = engine(4, 4, 2, ReductionScheme::TwoPhase);
        one.iterate();
        two.iterate();
        assert_eq!(one.x().max_abs_diff(two.x()), 0.0);
    }

    #[test]
    fn more_gpus_is_faster_per_iteration() {
        // Figure 9: close-to-linear speedup from model parallelism.
        let t1 = engine(1, 1, 4, ReductionScheme::OnePhase).iterate().total();
        let mut e4 = engine(4, 4, 1, ReductionScheme::OnePhase);
        let t4 = e4.iterate().total();
        assert!(
            t4 < t1,
            "4 GPUs should beat 1 GPU per iteration: {t1} vs {t4}"
        );
    }

    #[test]
    fn converges_on_training_data() {
        let mut su = engine(2, 2, 2, ReductionScheme::TwoPhase);
        let before = su.train_rmse();
        for _ in 0..3 {
            su.iterate();
        }
        assert!(su.train_rmse() < before * 0.6);
    }

    #[test]
    fn simulated_time_accumulates_and_profiler_fills() {
        let mut su = engine(2, 2, 2, ReductionScheme::OnePhase);
        let s1 = su.iterate();
        assert!(s1.total() > 0.0);
        assert!(s1.update_x.get_hermitian_s > 0.0);
        assert!(s1.update_x.batch_solve_s > 0.0);
        assert!(su.simulated_time() > 0.0);
        assert!(!su.cluster().profiler().is_empty());
    }

    #[test]
    fn auto_plan_on_small_problem_is_single_partition() {
        let cluster = GpuCluster::titan_x_flat(2);
        let cfg = SuAlsConfig::auto(als_config(), ReductionScheme::OnePhase);
        let su = SuAlsEngine::new(cfg, ratings(), cluster);
        assert_eq!(su.plan_x(), PartitionPlan { p: 1, q: 1 });
    }
}

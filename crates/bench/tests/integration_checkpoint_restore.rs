//! Checkpoint-restore scenario (§4.4): save mid-training, restore into a
//! *fresh* trainer and into a serving snapshot, and verify both the RMSE
//! continuity of resumed training and the equivalence of the serving path.

use cumf_core::checkpoint::CheckpointManager;
use cumf_core::config::AlsConfig;
use cumf_core::trainer::{Backend, MatrixFactorizer};
use cumf_data::synth::SyntheticConfig;
use cumf_data::train_test_split;
use cumf_serve::FactorSnapshot;

fn config(iterations: usize) -> AlsConfig {
    AlsConfig {
        f: 12,
        lambda: 0.05,
        iterations,
        ..Default::default()
    }
}

#[test]
fn restore_mid_training_continues_and_serves() {
    let data = SyntheticConfig {
        m: 300,
        n: 150,
        nnz: 9_000,
        rank: 6,
        noise_std: 0.1,
        ..Default::default()
    }
    .generate();
    let split = train_test_split(&data.ratings, 0.1, 11);
    let dir = std::env::temp_dir().join(format!("cumf_restore_scenario_{}", std::process::id()));

    // Phase 1: train with checkpointing, then "crash" after 3 iterations.
    let mut first = MatrixFactorizer::new(config(3), Backend::Reference)
        .with_checkpointing(&dir)
        .unwrap();
    let before = first.fit(&split.train, &split.test);
    drop(first);

    // Phase 2: a fresh process restores the latest checkpoint…
    let mgr = CheckpointManager::new(&dir).unwrap();
    let ckpt = mgr.load_latest().unwrap().expect("checkpoint saved");
    assert_eq!(ckpt.iteration, 3);

    // …into a serving snapshot: predictions must equal the crashed
    // trainer's, so serving continuity is immediate.
    let snapshot = FactorSnapshot::from_checkpoint(&ckpt);
    assert_eq!(snapshot.n_users(), 300);
    assert_eq!(snapshot.n_items(), 150);
    let recs = snapshot.recommend_one(0, 5, &[]);
    assert_eq!(recs.len(), 5);

    // …and into a fresh trainer: resumed RMSE may never regress below the
    // checkpointed quality (ALS is monotone in the training objective).
    let mut resumed =
        MatrixFactorizer::new(config(3), Backend::Reference).with_checkpoint_restore(ckpt);
    let after = resumed.fit(&split.train, &split.test);

    let rmse_at_crash = before.final_train_rmse();
    for it in &after.iterations {
        assert!(
            it.train_rmse <= rmse_at_crash + 1e-6,
            "resumed iteration {} regressed: {} vs checkpointed {}",
            it.iteration,
            it.train_rmse,
            rmse_at_crash
        );
    }
    assert!(after.final_train_rmse() <= rmse_at_crash + 1e-6);

    // The restored trainer and the snapshot agree with each other.
    let trainer_recs = resumed.recommend(0, 5, &[]);
    let snapshot_after = FactorSnapshot::from_trainer(&resumed);
    assert_eq!(snapshot_after.recommend_one(0, 5, &[]), trainer_recs);

    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn restore_into_single_gpu_backend_keeps_continuity() {
    // Cross-backend restore: checkpoints are engine-agnostic, so factors
    // saved from the reference engine resume on the simulated-GPU engine.
    let data = SyntheticConfig {
        m: 200,
        n: 100,
        nnz: 6_000,
        ..Default::default()
    }
    .generate();
    let split = train_test_split(&data.ratings, 0.1, 5);
    let dir = std::env::temp_dir().join(format!("cumf_restore_xbackend_{}", std::process::id()));

    let mut reference = MatrixFactorizer::new(config(2), Backend::Reference)
        .with_checkpointing(&dir)
        .unwrap();
    let before = reference.fit(&split.train, &split.test);

    let ckpt = CheckpointManager::new(&dir)
        .unwrap()
        .load_latest()
        .unwrap()
        .unwrap();
    let mut gpu =
        MatrixFactorizer::new(config(2), Backend::single_gpu()).with_checkpoint_restore(ckpt);
    let after = gpu.fit(&split.train, &split.test);
    assert!(after.final_train_rmse() <= before.final_train_rmse() + 1e-6);
    assert!(after.total_sim_time() > 0.0);

    std::fs::remove_dir_all(dir).unwrap();
}

//! Clean-fixture obs crate: every rule satisfied.
use crate::sync::atomic::{AtomicU64, Ordering};

pub mod sync {
    // lint-ok-file: sync-facade this module IS the facade re-export.
    pub use std::sync::atomic;
}

pub struct Counter {
    hits: AtomicU64,
}

impl Counter {
    pub fn bump(&self) {
        // relaxed-ok: monotonic counter, read only for reporting
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn publish(&self, n: u64) {
        // ordering-ok: Release pairs with the Acquire in read() to publish n
        self.hits.store(n, Ordering::Release);
    }

    pub fn read(&self) -> u64 {
        self.hits.load(Ordering::Acquire) // ordering-ok: pairs with publish()
    }
}

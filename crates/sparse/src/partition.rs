//! Partitioning of the rating matrix `R`, matching lines 2–4 of Algorithm 3
//! (SU-ALS) in the paper:
//!
//! * `Θᵀ` is split **vertically** (by columns of `R`) into `p` partitions,
//!   one per GPU;
//! * `X` is split **horizontally** (by rows of `R`) into `q` partitions,
//!   solved batch by batch;
//! * `R` is split into a `p × q` **grid** following both schemes, so that
//!   block `R^(ij)` holds exactly the ratings whose column falls in `Θᵀ(i)`
//!   and whose row falls in `X(j)`.

use crate::{Coo, Csr, SparseError};

/// A rectangular block of a larger sparse matrix.
///
/// Indices stored in `csr` are *local* to the block; `row_start` /
/// `col_start` give the block's offset in the global matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseBlock {
    /// First global row covered by this block.
    pub row_start: u32,
    /// First global column covered by this block.
    pub col_start: u32,
    /// The block's contents with block-local indices.
    pub csr: Csr,
}

impl SparseBlock {
    /// Number of rows in the block.
    pub fn n_rows(&self) -> u32 {
        self.csr.n_rows()
    }

    /// Number of columns in the block.
    pub fn n_cols(&self) -> u32 {
        self.csr.n_cols()
    }

    /// Number of non-zeros in the block.
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    /// Global row index for a block-local row.
    pub fn global_row(&self, local: u32) -> u32 {
        self.row_start + local
    }

    /// Global column index for a block-local column.
    pub fn global_col(&self, local: u32) -> u32 {
        self.col_start + local
    }
}

/// Splits `0..total` into `parts` contiguous ranges whose sizes differ by at
/// most one (the first `total % parts` ranges get the extra element).
pub fn split_ranges(total: u32, parts: usize) -> Result<Vec<(u32, u32)>, SparseError> {
    if parts == 0 || parts as u64 > total.max(1) as u64 {
        return Err(SparseError::InvalidPartition {
            requested: parts,
            available: total as usize,
        });
    }
    let base = total / parts as u32;
    let extra = total % parts as u32;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0u32;
    for i in 0..parts as u32 {
        let len = base + if i < extra { 1 } else { 0 };
        ranges.push((start, start + len));
        start += len;
    }
    Ok(ranges)
}

/// Horizontal partition of `R` into `q` row blocks (the `X` partition scheme).
pub fn horizontal_partition(r: &Csr, q: usize) -> Result<Vec<SparseBlock>, SparseError> {
    let ranges = split_ranges(r.n_rows(), q)?;
    Ok(ranges
        .into_iter()
        .map(|(rs, re)| extract_block(r, rs, re, 0, r.n_cols()))
        .collect())
}

/// Vertical partition of `R` into `p` column blocks (the `Θᵀ` partition scheme).
pub fn vertical_partition(r: &Csr, p: usize) -> Result<Vec<SparseBlock>, SparseError> {
    let ranges = split_ranges(r.n_cols(), p)?;
    Ok(ranges
        .into_iter()
        .map(|(cs, ce)| extract_block(r, 0, r.n_rows(), cs, ce))
        .collect())
}

/// Grid partition of `R` into `p` column partitions × `q` row partitions.
///
/// Block `(i, j)` (`0 ≤ i < p`, `0 ≤ j < q`) corresponds to `R^(ij)` in the
/// paper: rows from `X(j)`, columns from `Θᵀ(i)`.
#[derive(Debug, Clone)]
pub struct GridPartition {
    p: usize,
    q: usize,
    row_ranges: Vec<(u32, u32)>,
    col_ranges: Vec<(u32, u32)>,
    /// Blocks in `i`-major order: index `i * q + j`.
    blocks: Vec<SparseBlock>,
}

impl GridPartition {
    /// Number of column partitions `p`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of row partitions `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The row range `[start, end)` of `X(j)`.
    pub fn row_range(&self, j: usize) -> (u32, u32) {
        self.row_ranges[j]
    }

    /// The column range `[start, end)` of `Θᵀ(i)`.
    pub fn col_range(&self, i: usize) -> (u32, u32) {
        self.col_ranges[i]
    }

    /// Block `R^(ij)`.
    pub fn block(&self, i: usize, j: usize) -> &SparseBlock {
        &self.blocks[i * self.q + j]
    }

    /// Iterates over `(i, j, block)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &SparseBlock)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .map(move |(k, b)| (k / self.q, k % self.q, b))
    }

    /// Total non-zeros across all blocks (must equal the source `Nz`).
    pub fn total_nnz(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).sum()
    }
}

/// Builds the `p × q` grid partition of `R` (Algorithm 3, line 4).
pub fn grid_partition(r: &Csr, p: usize, q: usize) -> Result<GridPartition, SparseError> {
    let col_ranges = split_ranges(r.n_cols(), p)?;
    let row_ranges = split_ranges(r.n_rows(), q)?;
    let mut blocks = Vec::with_capacity(p * q);
    for &(cs, ce) in &col_ranges {
        for &(rs, re) in &row_ranges {
            blocks.push(extract_block(r, rs, re, cs, ce));
        }
    }
    Ok(GridPartition {
        p,
        q,
        row_ranges,
        col_ranges,
        blocks,
    })
}

fn extract_block(
    r: &Csr,
    row_start: u32,
    row_end: u32,
    col_start: u32,
    col_end: u32,
) -> SparseBlock {
    let n_rows = row_end - row_start;
    let n_cols = col_end - col_start;
    let mut coo = Coo::new(n_rows, n_cols);
    for u in row_start..row_end {
        let (cols, vals) = r.row(u);
        // Columns within a CSR row are sorted, so the block's column range is
        // a contiguous sub-slice found by binary search.
        let lo = cols.partition_point(|&c| c < col_start);
        let hi = cols.partition_point(|&c| c < col_end);
        for k in lo..hi {
            coo.push(u - row_start, cols[k] - col_start, vals[k])
                .expect("block-local indices are in range by construction");
        }
    }
    SparseBlock {
        row_start,
        col_start,
        csr: coo.to_csr(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        // 6x6 with a diagonal plus some off-diagonal entries.
        let mut c = Coo::new(6, 6);
        for i in 0..6u32 {
            c.push(i, i, (i + 1) as f32).unwrap();
        }
        c.push(0, 5, 10.0).unwrap();
        c.push(5, 0, 20.0).unwrap();
        c.push(2, 4, 30.0).unwrap();
        c.to_csr()
    }

    #[test]
    fn split_ranges_covers_everything() {
        let ranges = split_ranges(10, 3).unwrap();
        assert_eq!(ranges, vec![(0, 4), (4, 7), (7, 10)]);
        assert!(split_ranges(10, 0).is_err());
        assert!(split_ranges(3, 4).is_err());
        assert_eq!(split_ranges(4, 4).unwrap().len(), 4);
    }

    #[test]
    fn horizontal_partition_preserves_nnz_and_offsets() {
        let r = sample();
        let blocks = horizontal_partition(&r, 3).unwrap();
        assert_eq!(blocks.len(), 3);
        let total: usize = blocks.iter().map(|b| b.nnz()).sum();
        assert_eq!(total, r.nnz());
        assert_eq!(blocks[1].row_start, 2);
        // Entry (2,4,30.0) lands in block 1 at local row 0.
        assert_eq!(blocks[1].csr.get(0, 4), Some(30.0));
    }

    #[test]
    fn vertical_partition_preserves_nnz() {
        let r = sample();
        let blocks = vertical_partition(&r, 2).unwrap();
        assert_eq!(blocks.len(), 2);
        let total: usize = blocks.iter().map(|b| b.nnz()).sum();
        assert_eq!(total, r.nnz());
        // (0,5,10.0) is in the second column block at local col 2.
        assert_eq!(blocks[1].col_start, 3);
        assert_eq!(blocks[1].csr.get(0, 2), Some(10.0));
    }

    #[test]
    fn grid_partition_reconstructs_all_entries() {
        let r = sample();
        let grid = grid_partition(&r, 2, 3).unwrap();
        assert_eq!(grid.p(), 2);
        assert_eq!(grid.q(), 3);
        assert_eq!(grid.total_nnz(), r.nnz());
        // Every original entry must be found in exactly one block at the
        // translated local position.
        for e in r.iter() {
            let mut found = 0;
            for (_, _, b) in grid.iter() {
                if e.row >= b.row_start
                    && e.row < b.row_start + b.n_rows()
                    && e.col >= b.col_start
                    && e.col < b.col_start + b.n_cols()
                {
                    if let Some(v) = b.csr.get(e.row - b.row_start, e.col - b.col_start) {
                        assert_eq!(v, e.val);
                        found += 1;
                    }
                }
            }
            assert_eq!(found, 1, "entry {:?} found in {} blocks", e, found);
        }
    }

    #[test]
    fn grid_block_indexing_matches_ranges() {
        let r = sample();
        let grid = grid_partition(&r, 3, 2).unwrap();
        for (i, j, b) in grid.iter() {
            assert_eq!(b.col_start, grid.col_range(i).0);
            assert_eq!(b.row_start, grid.row_range(j).0);
            assert_eq!(b.n_cols(), grid.col_range(i).1 - grid.col_range(i).0);
            assert_eq!(b.n_rows(), grid.row_range(j).1 - grid.row_range(j).0);
        }
    }

    #[test]
    fn single_partition_is_identity() {
        let r = sample();
        let blocks = horizontal_partition(&r, 1).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].csr, r);
        let blocks = vertical_partition(&r, 1).unwrap();
        assert_eq!(blocks[0].csr, r);
    }
}

//! `cumf-check`: the workspace's source-level concurrency lint.
//!
//! A deliberately small, dependency-free line-based analyzer that enforces
//! the concurrency hygiene rules the model checker (`vendor/loom`) and the
//! sanitizer lanes cannot: justification comments on atomic orderings, the
//! `crate::sync` facade discipline, panic-free serving code, shard-lock
//! ordering in the result cache, and drift detection for the vendored
//! dependency shims.
//!
//! # Rules
//!
//! | rule | scope | requirement |
//! |------|-------|-------------|
//! | `relaxed-ordering` | `crates/*/src`, non-test | every `Ordering::Relaxed` carries a `// relaxed-ok: <why>` justification |
//! | `atomic-ordering` | `crates/*/src`, non-test | every `Acquire`/`Release`/`AcqRel`/`SeqCst` carries `// ordering-ok: <why>` |
//! | `sync-facade` | `crates/{obs,serve}/src`, non-test | no `std::sync` reference bypassing the `crate::sync` facade |
//! | `serve-unwrap` | `crates/serve/src`, non-test | no `.unwrap()` / `.expect(` on the serving tier's request path |
//! | `lock-order` | `crates/serve/src/cache.rs` | shard guards stay statement-temporaries; shards iterate in ascending order; never two shard locks in one statement |
//! | `quant-cast` | `crates/*/src/*quant*.rs`, non-test | every `as f32` / `as i8` narrowing in a codec module carries `// quant-ok: <why>` |
//! | `shim-drift` | `vendor/*` | the shim's `pub` surface matches its checked-in `SURFACE.txt` |
//! | `baseline-stale` | `crates/check/baseline.txt` | every baseline entry still matches a real finding |
//!
//! # Suppressions
//!
//! * `// relaxed-ok: <why>` / `// ordering-ok: <why>` — on the same line as
//!   the atomic op or up to three lines above it.  `ordering-ok:` is the
//!   stronger claim and also satisfies `relaxed-ordering`.
//! * `// quant-ok: <why>` — same window; justifies a lossy-looking numeric
//!   cast in a quantization codec module (the casts are where codec error
//!   bounds are either honored or silently broken, so each one must say why
//!   it is exact or how its error is accounted for).
//! * `// lint-ok: <rule> <why>` — same window, suppresses one rule.
//! * `// lint-ok-file: <rule> <why>` — anywhere in a file, suppresses the
//!   rule for the whole file (used by the sync facade modules themselves).
//! * `crates/check/baseline.txt` — tab-separated `rule<TAB>path<TAB>source`
//!   entries for grandfathered findings.  The tree's target state — and its
//!   state at every merge — is an **empty** baseline; entries that stop
//!   matching become `baseline-stale` findings so the allowlist can only
//!   shrink.
//!
//! All justifications must be non-empty: a bare marker is itself unheeded.
//!
//! # Heuristics
//!
//! The scanner is line-based by design (no rustc dependency, so it runs in
//! the `analysis` CI lane in milliseconds).  String literals are blanked
//! before matching, `//` comments are split off with an in-string guard,
//! and `#[cfg(test)]` / `#[cfg(all(test, ...))]` inline modules are skipped
//! by brace tracking.  Multi-line string literals and `mod tests;` in a
//! separate file inside `src/` are not modeled; the workspace uses neither
//! on lint-scanned paths.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub const RULE_RELAXED: &str = "relaxed-ordering";
pub const RULE_ORDERING: &str = "atomic-ordering";
pub const RULE_FACADE: &str = "sync-facade";
pub const RULE_UNWRAP: &str = "serve-unwrap";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_QUANT_CAST: &str = "quant-cast";
pub const RULE_SHIM_DRIFT: &str = "shim-drift";
pub const RULE_BASELINE_STALE: &str = "baseline-stale";

/// How many lines above a flagged line a justification comment may sit.
const ANNOTATION_WINDOW: usize = 3;

/// Crates whose concurrency primitives must come from the `crate::sync`
/// facade so they can run under the model checker unchanged.
const FACADE_CRATES: &[&str] = &["obs", "serve"];

const STRONG_ORDERINGS: &[&str] = &["Acquire", "Release", "AcqRel", "SeqCst"];

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based; 0 for whole-file findings (missing `SURFACE.txt`).
    pub line: usize,
    /// The offending source line, trimmed (empty for file-level findings).
    pub source: String,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )?;
        if !self.source.is_empty() {
            write!(f, "\n    {}", self.source)?;
        }
        Ok(())
    }
}

/// One source line, pre-split for the rule matchers.
struct Line {
    /// Code with string-literal contents blanked and comments removed.
    code: String,
    /// Comment text (everything after a non-string `//`).
    comment: String,
    /// Inside an inline `#[cfg(test)]`-style module.
    is_test: bool,
}

/// Splits a raw line into (code-with-blanked-strings, comment-text).
fn split_line(raw: &str) -> (String, String) {
    let mut code = String::with_capacity(raw.len());
    let mut in_string = false;
    let mut chars = raw.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_string = false;
                    code.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                code.push('"');
            }
            '/' if matches!(chars.peek(), Some((_, '/'))) => {
                return (code, raw[i + 2..].trim().to_string());
            }
            _ => code.push(c),
        }
    }
    (code, String::new())
}

/// Parses a file into classified lines, marking inline test modules.
fn parse_file(text: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut depth: i64 = 0;
    let mut pending_test_attr = false;
    // Depth *outside* the innermost test module; `None` when not in one.
    let mut test_until_depth: Option<i64> = None;

    for raw in text.lines() {
        let (code, comment) = split_line(raw);
        let trimmed = code.trim();

        if trimmed.starts_with("#[cfg(test)") || trimmed.starts_with("#[cfg(all(test") {
            pending_test_attr = true;
        }
        let opens_test_mod = pending_test_attr
            && trimmed.contains("mod ")
            && trimmed.contains('{')
            && test_until_depth.is_none();
        if opens_test_mod {
            test_until_depth = Some(depth);
            pending_test_attr = false;
        } else if pending_test_attr && !trimmed.is_empty() && !trimmed.starts_with("#[") {
            // The attribute guarded something other than an inline mod
            // (e.g. a `use`), so it does not open a region.
            pending_test_attr = false;
        }

        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }

        let is_test = test_until_depth.is_some();
        if let Some(outer) = test_until_depth {
            if depth <= outer {
                test_until_depth = None;
            }
        }
        lines.push(Line {
            code,
            comment,
            is_test,
        });
    }
    lines
}

/// True if `comment` carries `marker` followed by a non-empty justification.
fn justified(comment: &str, marker: &str) -> bool {
    comment
        .find(marker)
        .is_some_and(|at| !comment[at + marker.len()..].trim().is_empty())
}

/// True if line `idx` (or up to [`ANNOTATION_WINDOW`] lines above) carries
/// any of `markers` with a justification.
fn annotated(lines: &[Line], idx: usize, markers: &[&str]) -> bool {
    let lo = idx.saturating_sub(ANNOTATION_WINDOW);
    lines[lo..=idx]
        .iter()
        .any(|l| markers.iter().any(|m| justified(&l.comment, m)))
}

fn file_suppressed(lines: &[Line], rule: &str) -> bool {
    let marker = format!("lint-ok-file: {rule}");
    lines.iter().any(|l| justified(&l.comment, &marker))
}

fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans every workspace crate under `root/crates` plus the vendored shims
/// and returns all findings (before baseline filtering), sorted.
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    scan_crates(root, &mut findings);
    scan_vendor(root, &mut findings);
    findings.sort();
    findings
}

fn scan_crates(root: &Path, findings: &mut Vec<Finding>) {
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return;
    };
    let mut crate_dirs: Vec<_> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = crate_dir
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        for file in rs_files(&src) {
            let Ok(text) = fs::read_to_string(&file) else {
                continue;
            };
            let path = rel(root, &file);
            let lines = parse_file(&text);
            scan_file(&crate_name, &path, &text, &lines, findings);
        }
    }
}

fn scan_file(
    crate_name: &str,
    path: &str,
    text: &str,
    lines: &[Line],
    findings: &mut Vec<Finding>,
) {
    let raw_lines: Vec<&str> = text.lines().collect();
    let is_cache = crate_name == "serve" && path.ends_with("/cache.rs");
    let is_quant = path
        .rsplit('/')
        .next()
        .is_some_and(|file| file.contains("quant"));
    let mut push = |rule: &'static str, idx: usize, message: String| {
        findings.push(Finding {
            rule,
            path: path.to_string(),
            line: idx + 1,
            source: raw_lines[idx].trim().to_string(),
            message,
        });
    };

    for (idx, line) in lines.iter().enumerate() {
        if line.is_test {
            continue;
        }
        let code = line.code.as_str();
        let generic = |rule: &str| format!("lint-ok: {rule}");

        // relaxed-ordering / atomic-ordering: every atomic memory ordering
        // must carry a justification comment.
        if code.contains("Ordering::Relaxed")
            && !annotated(
                lines,
                idx,
                &["relaxed-ok:", "ordering-ok:", &generic(RULE_RELAXED)],
            )
            && !file_suppressed(lines, RULE_RELAXED)
        {
            push(
                RULE_RELAXED,
                idx,
                "Ordering::Relaxed without a `// relaxed-ok:` justification".to_string(),
            );
        }
        if STRONG_ORDERINGS
            .iter()
            .any(|o| code.contains(&format!("Ordering::{o}")))
            && !annotated(lines, idx, &["ordering-ok:", &generic(RULE_ORDERING)])
            && !file_suppressed(lines, RULE_ORDERING)
        {
            push(
                RULE_ORDERING,
                idx,
                "atomic ordering without an `// ordering-ok:` justification".to_string(),
            );
        }

        // sync-facade: facade-covered crates must not reach std::sync
        // directly, or the model checker silently loses instrumentation.
        if FACADE_CRATES.contains(&crate_name)
            && code.contains("std::sync")
            && !annotated(lines, idx, &[&generic(RULE_FACADE)])
            && !file_suppressed(lines, RULE_FACADE)
        {
            push(
                RULE_FACADE,
                idx,
                "std::sync bypasses the crate::sync model-check facade".to_string(),
            );
        }

        // serve-unwrap: the request path must degrade, not abort.
        if crate_name == "serve"
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !annotated(lines, idx, &[&generic(RULE_UNWRAP)])
            && !file_suppressed(lines, RULE_UNWRAP)
        {
            push(
                RULE_UNWRAP,
                idx,
                "unwrap/expect on the serving path; return an error or justify with `// lint-ok: serve-unwrap`"
                    .to_string(),
            );
        }

        // quant-cast: in codec modules, a numeric narrowing is exactly
        // where a documented error bound is honored or silently broken, so
        // each `as f32` / `as i8` must explain itself.
        if is_quant
            && (code.contains(" as f32") || code.contains(" as i8"))
            && !annotated(lines, idx, &["quant-ok:", &generic(RULE_QUANT_CAST)])
            && !file_suppressed(lines, RULE_QUANT_CAST)
        {
            push(
                RULE_QUANT_CAST,
                idx,
                "numeric cast in a quantization codec without a `// quant-ok:` justification"
                    .to_string(),
            );
        }

        // lock-order: the sharded cache takes one shard lock at a time, as
        // a statement-temporary, iterating shards in ascending order.
        if is_cache && !file_suppressed(lines, RULE_LOCK_ORDER) {
            let suppressed = annotated(lines, idx, &[&generic(RULE_LOCK_ORDER)]);
            let lock_hits: Vec<usize> = code.match_indices("Self::lock(").map(|(i, _)| i).collect();
            if !suppressed {
                if lock_hits.len() >= 2 {
                    push(
                        RULE_LOCK_ORDER,
                        idx,
                        "two shard locks in one statement can deadlock against the reverse order"
                            .to_string(),
                    );
                } else if let Some(&at) = lock_hits.first() {
                    let prefix = &code[..at];
                    if prefix.contains("let ") && prefix.contains('=') {
                        push(
                            RULE_LOCK_ORDER,
                            idx,
                            "shard guard bound to a `let` outlives its statement; keep guards temporary"
                                .to_string(),
                        );
                    }
                }
                if code.contains(".rev()") && code.contains("shards") {
                    push(
                        RULE_LOCK_ORDER,
                        idx,
                        "shards must be traversed in ascending index order".to_string(),
                    );
                }
            }
        }
    }
}

/// Extracts the normalized public surface of a shim's `src/` tree: one
/// entry per `pub` item declaration, whitespace-collapsed, bodies
/// truncated.  `pub(crate)`/`pub(super)` items are internal and excluded.
pub fn pub_surface(src: &Path) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in rs_files(src) {
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        for line in parse_file(&text) {
            if line.is_test {
                continue;
            }
            let trimmed = line.code.trim();
            if !trimmed.starts_with("pub ") {
                continue;
            }
            let keyword = trimmed.split_whitespace().nth(1).unwrap_or("");
            let is_item = matches!(
                keyword,
                "fn" | "struct"
                    | "enum"
                    | "trait"
                    | "mod"
                    | "type"
                    | "const"
                    | "static"
                    | "use"
                    | "unsafe"
                    | "async"
            );
            if !is_item {
                continue;
            }
            let cut = if keyword == "use" {
                trimmed.len()
            } else {
                trimmed.find('{').unwrap_or(trimmed.len())
            };
            let normalized = trimmed[..cut]
                .trim_end_matches(|c: char| c.is_whitespace() || c == ';' || c == '{')
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ");
            if !normalized.is_empty() {
                out.insert(normalized);
            }
        }
    }
    out
}

fn vendor_shims(root: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(root.join("vendor")) else {
        return Vec::new();
    };
    let mut dirs: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("src").is_dir())
        .collect();
    dirs.sort();
    dirs
}

fn scan_vendor(root: &Path, findings: &mut Vec<Finding>) {
    for shim in vendor_shims(root) {
        let actual = pub_surface(&shim.join("src"));
        let surface_path = shim.join("SURFACE.txt");
        let shim_rel = rel(root, &surface_path);
        let Ok(recorded_text) = fs::read_to_string(&surface_path) else {
            findings.push(Finding {
                rule: RULE_SHIM_DRIFT,
                path: shim_rel,
                line: 0,
                source: String::new(),
                message:
                    "missing SURFACE.txt; run `cargo run -p cumf-check --bin lint -- --update-surface`"
                        .to_string(),
            });
            continue;
        };
        let recorded: BTreeSet<String> = recorded_text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        for item in actual.difference(&recorded) {
            findings.push(Finding {
                rule: RULE_SHIM_DRIFT,
                path: shim_rel.clone(),
                line: 0,
                source: item.clone(),
                message: "shim grew a public item not recorded in SURFACE.txt".to_string(),
            });
        }
        for item in recorded.difference(&actual) {
            findings.push(Finding {
                rule: RULE_SHIM_DRIFT,
                path: shim_rel.clone(),
                line: 0,
                source: item.clone(),
                message: "SURFACE.txt entry no longer exists in the shim".to_string(),
            });
        }
    }
}

/// Regenerates every shim's `SURFACE.txt`; returns the paths written.
pub fn update_surfaces(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    for shim in vendor_shims(root) {
        let surface = pub_surface(&shim.join("src"));
        let name = shim
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        let mut text = format!(
            "# Public surface of vendor/{name}, one normalized declaration per line.\n\
             # Checked by `cumf-check` (rule: shim-drift); regenerate with\n\
             # `cargo run -p cumf-check --bin lint -- --update-surface`.\n"
        );
        for item in &surface {
            text.push_str(item);
            text.push('\n');
        }
        let path = shim.join("SURFACE.txt");
        fs::write(&path, text)?;
        written.push(path);
    }
    Ok(written)
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub source: String,
}

/// Loads `crates/check/baseline.txt` (missing file = empty baseline).
pub fn load_baseline(root: &Path) -> Vec<BaselineEntry> {
    let Ok(text) = fs::read_to_string(root.join("crates/check/baseline.txt")) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim_end)
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, '\t');
            Some(BaselineEntry {
                rule: parts.next()?.to_string(),
                path: parts.next()?.to_string(),
                source: parts.next()?.trim().to_string(),
            })
        })
        .collect()
}

#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings not covered by the baseline — these fail the build.
    pub unbaselined: Vec<Finding>,
    /// Count of findings suppressed by baseline entries.
    pub baselined: usize,
    /// Baseline entries that no longer match anything — these also fail the
    /// build, so the allowlist can only shrink.
    pub stale: Vec<Finding>,
    /// Total findings before baseline filtering.
    pub total: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.unbaselined.is_empty() && self.stale.is_empty()
    }
}

pub fn apply_baseline(findings: Vec<Finding>, entries: &[BaselineEntry]) -> LintReport {
    let mut used = vec![false; entries.len()];
    let mut report = LintReport {
        total: findings.len(),
        ..Default::default()
    };
    for f in findings {
        let hit = entries
            .iter()
            .position(|e| e.rule == f.rule && e.path == f.path && e.source == f.source.trim());
        match hit {
            Some(i) => {
                used[i] = true;
                report.baselined += 1;
            }
            None => report.unbaselined.push(f),
        }
    }
    for (entry, used) in entries.iter().zip(used) {
        if !used {
            report.stale.push(Finding {
                rule: RULE_BASELINE_STALE,
                path: "crates/check/baseline.txt".to_string(),
                line: 0,
                source: format!("{}\t{}\t{}", entry.rule, entry.path, entry.source),
                message: "baseline entry no longer matches any finding; delete it".to_string(),
            });
        }
    }
    report
}

/// Full lint run: scan the workspace at `root`, apply its baseline.
pub fn run(root: &Path) -> LintReport {
    let findings = check_workspace(root);
    let baseline = load_baseline(root);
    apply_baseline(findings, &baseline)
}

/// The workspace root when building in-tree (manifest dir is
/// `crates/check`).
pub fn default_root() -> PathBuf {
    let guess = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    guess.canonicalize().unwrap_or(guess)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name)
    }

    #[test]
    fn clean_fixture_is_quiet() {
        let findings = check_workspace(&fixture("clean"));
        assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
        let report = apply_baseline(findings, &[]);
        assert!(report.is_clean());
    }

    #[test]
    fn seeded_fixture_trips_every_rule() {
        let findings = check_workspace(&fixture("seeded"));
        let rules: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
        for rule in [
            RULE_RELAXED,
            RULE_ORDERING,
            RULE_FACADE,
            RULE_UNWRAP,
            RULE_LOCK_ORDER,
            RULE_QUANT_CAST,
            RULE_SHIM_DRIFT,
        ] {
            assert!(
                rules.contains(rule),
                "seeded fixture missed rule {rule}: {findings:#?}"
            );
        }
        let report = apply_baseline(findings, &[]);
        assert!(!report.is_clean(), "seeded fixture must fail the lint");
    }

    #[test]
    fn test_modules_are_exempt() {
        // The seeded fixture hides identical violations inside a
        // #[cfg(test)] mod; none of its findings may point there.
        let findings = check_workspace(&fixture("seeded"));
        for f in &findings {
            assert!(
                !f.source.contains("IN_TEST_MOD"),
                "flagged test-only code: {f}"
            );
        }
    }

    #[test]
    fn quant_cast_rule_is_scoped_to_codec_modules() {
        let findings = check_workspace(&fixture("seeded"));
        let quant: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RULE_QUANT_CAST)
            .collect();
        assert_eq!(
            quant.len(),
            2,
            "both unjustified casts must be flagged: {quant:#?}"
        );
        assert!(
            quant.iter().all(|f| f.path.contains("quant")),
            "quant-cast fired outside a codec module: {quant:#?}"
        );
        // The clean fixture's codec module carries justifications on both
        // cast shapes (same-line and line-above) and must stay quiet.
        let clean = check_workspace(&fixture("clean"));
        assert!(
            clean.iter().all(|f| f.rule != RULE_QUANT_CAST),
            "justified casts flagged: {clean:#?}"
        );
    }

    #[test]
    fn empty_justifications_do_not_count() {
        let text = "fn f(a: &A) {\n    a.load(Ordering::Relaxed); // relaxed-ok:\n}\n";
        let lines = parse_file(text);
        assert!(
            !annotated(&lines, 1, &["relaxed-ok:"]),
            "bare marker must not count"
        );
    }

    #[test]
    fn annotation_window_is_three_lines() {
        let text = "// relaxed-ok: counter is monotonic and only read for reporting\n\
                    //\n\
                    //\n\
                    a.load(Ordering::Relaxed);\n\
                    //\n\
                    b.load(Ordering::Relaxed);\n";
        let lines = parse_file(text);
        assert!(annotated(&lines, 3, &["relaxed-ok:"]));
        assert!(
            !annotated(&lines, 5, &["relaxed-ok:"]),
            "window must close after 3 lines"
        );
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let (code, comment) =
            split_line(r#"let s = "Ordering::Relaxed .unwrap()"; // Ordering::SeqCst"#);
        assert!(
            !code.contains("Ordering::"),
            "string content leaked: {code}"
        );
        assert!(comment.contains("Ordering::SeqCst"));
        let (code, _) = split_line(r#"let url = "https://example.com";"#);
        assert!(
            code.ends_with(';'),
            "// inside a string must not start a comment"
        );
    }

    #[test]
    fn baseline_suppresses_then_goes_stale() {
        let finding = Finding {
            rule: RULE_UNWRAP,
            path: "crates/serve/src/x.rs".to_string(),
            line: 10,
            source: "foo.unwrap();".to_string(),
            message: String::new(),
        };
        let entry = BaselineEntry {
            rule: RULE_UNWRAP.to_string(),
            path: "crates/serve/src/x.rs".to_string(),
            source: "foo.unwrap();".to_string(),
        };
        let report = apply_baseline(vec![finding], std::slice::from_ref(&entry));
        assert_eq!(report.baselined, 1);
        assert!(report.is_clean());

        let report = apply_baseline(Vec::new(), &[entry]);
        assert_eq!(
            report.stale.len(),
            1,
            "unused entries must surface as stale"
        );
        assert!(!report.is_clean());
    }

    #[test]
    fn surface_extraction_normalizes_declarations() {
        let shim_src = fixture("seeded").join("vendor/fakeshim/src");
        let surface = pub_surface(&shim_src);
        assert!(surface.contains("pub fn stable()"), "surface: {surface:?}");
        assert!(surface.contains("pub fn sneaky()"), "surface: {surface:?}");
        assert!(
            !surface.iter().any(|s| s.contains("hidden")),
            "pub(crate)/test items leaked into the surface: {surface:?}"
        );
    }

    /// The acceptance bar: the real tree lints clean with an empty
    /// baseline.  This runs in tier-1, so any unjustified atomic or facade
    /// bypass fails `cargo test` before it ever reaches CI's lint lane.
    #[test]
    fn workspace_tree_is_clean() {
        let report = run(&default_root());
        assert!(
            report.is_clean(),
            "workspace lint failed:\n{}\n{} stale baseline entries",
            report
                .unbaselined
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
            report.stale.len()
        );
    }
}

//! Degree statistics of a rating matrix.
//!
//! The cuMF paper's cost model (Table 3) is driven by `Nz/m`, the mean number
//! of ratings per user, and its analysis of the register/texture ablations
//! (Figures 7–8) hinges on how skewed that distribution is.  These helpers
//! compute the quantities the cost model and the data generators need.

use crate::Csr;
use rayon::prelude::*;

/// Summary statistics of a distribution of per-row (or per-column) non-zero
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of rows (or columns) summarized.
    pub count: usize,
    /// Total non-zeros.
    pub total: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`Nz/m` for rows).
    pub mean: f64,
    /// Population standard deviation of the degree.
    pub std_dev: f64,
    /// Number of rows (or columns) with zero non-zeros.
    pub empty: usize,
}

impl DegreeStats {
    fn from_degrees(degrees: &[usize]) -> Self {
        let count = degrees.len();
        if count == 0 {
            return Self {
                count: 0,
                total: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0,
                empty: 0,
            };
        }
        let total: usize = degrees.iter().sum();
        let min = *degrees.iter().min().unwrap();
        let max = *degrees.iter().max().unwrap();
        let mean = total as f64 / count as f64;
        let var = degrees
            .iter()
            .map(|&d| {
                let diff = d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / count as f64;
        let empty = degrees.iter().filter(|&&d| d == 0).count();
        Self {
            count,
            total,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
            empty,
        }
    }
}

/// Per-row non-zero counts (`n_{x_u}` for every user `u`).
pub fn row_degrees(r: &Csr) -> Vec<usize> {
    (0..r.n_rows()).map(|u| r.nnz_row(u)).collect()
}

/// Per-column non-zero counts (`n_{θ_v}` for every item `v`).
pub fn col_degrees(r: &Csr) -> Vec<usize> {
    let mut counts = vec![0usize; r.n_cols() as usize];
    for &c in r.col_idx() {
        counts[c as usize] += 1;
    }
    counts
}

/// Summary of the per-row degree distribution.
pub fn row_stats(r: &Csr) -> DegreeStats {
    DegreeStats::from_degrees(&row_degrees(r))
}

/// Summary of the per-column degree distribution.
pub fn col_stats(r: &Csr) -> DegreeStats {
    DegreeStats::from_degrees(&col_degrees(r))
}

/// Density `Nz / (m·n)` of the matrix.
pub fn density(r: &Csr) -> f64 {
    let cells = r.n_rows() as f64 * r.n_cols() as f64;
    if cells == 0.0 {
        0.0
    } else {
        r.nnz() as f64 / cells
    }
}

/// Histogram of row degrees with logarithmic (powers-of-two) buckets.
///
/// Bucket `k` counts rows whose degree `d` satisfies `2^k ≤ d < 2^(k+1)`,
/// with bucket 0 also containing `d = 0` rows' count reported separately by
/// [`DegreeStats::empty`]; useful for eyeballing power-law shape.
pub fn log2_degree_histogram(degrees: &[usize]) -> Vec<usize> {
    let max = degrees.iter().copied().max().unwrap_or(0);
    let buckets = if max == 0 {
        1
    } else {
        (usize::BITS - max.leading_zeros()) as usize
    };
    let mut hist = vec![0usize; buckets.max(1)];
    for &d in degrees {
        if d == 0 {
            continue;
        }
        let b = (usize::BITS - 1 - d.leading_zeros()) as usize;
        hist[b] += 1;
    }
    hist
}

/// Sum of squared per-row degrees, computed in parallel.
///
/// This is proportional to the total work of `get_hermitian_x` when the
/// Hermitian accumulation is not register-blocked (each row costs
/// `n_{x_u}·f²` regardless, but the *skew* of this quantity across thread
/// blocks determines load imbalance on the simulated GPU).
pub fn sum_sq_row_degrees(r: &Csr) -> u64 {
    (0..r.n_rows() as usize)
        .into_par_iter()
        .map(|u| {
            let d = r.nnz_row(u as u32) as u64;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        // Row degrees: 3, 1, 0, 2
        let mut c = Coo::new(4, 5);
        c.push(0, 0, 1.0).unwrap();
        c.push(0, 1, 1.0).unwrap();
        c.push(0, 4, 1.0).unwrap();
        c.push(1, 2, 1.0).unwrap();
        c.push(3, 0, 1.0).unwrap();
        c.push(3, 3, 1.0).unwrap();
        c.to_csr()
    }

    #[test]
    fn row_degrees_and_stats() {
        let r = sample();
        assert_eq!(row_degrees(&r), vec![3, 1, 0, 2]);
        let s = row_stats(&r);
        assert_eq!(s.count, 4);
        assert_eq!(s.total, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(s.empty, 1);
    }

    #[test]
    fn col_degrees_and_stats() {
        let r = sample();
        assert_eq!(col_degrees(&r), vec![2, 1, 1, 1, 1]);
        let s = col_stats(&r);
        assert_eq!(s.total, 6);
        assert_eq!(s.max, 2);
        assert_eq!(s.empty, 0);
    }

    #[test]
    fn density_value() {
        let r = sample();
        assert!((density(&r) - 6.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        // degrees 3,1,0,2 -> bucket0 (1): one row, bucket1 (2..3): two rows
        let hist = log2_degree_histogram(&[3, 1, 0, 2]);
        assert_eq!(hist, vec![1, 2]);
    }

    #[test]
    fn sum_sq_matches_manual() {
        let r = sample();
        assert_eq!(sum_sq_row_degrees(&r), (9 + 1) + 4);
    }

    #[test]
    fn empty_matrix_stats() {
        let r = Coo::new(0, 0).to_csr();
        let s = row_stats(&r);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(density(&r), 0.0);
    }
}

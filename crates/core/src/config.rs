//! Configuration types for the ALS engines.

/// Memory-optimization toggles of MO-ALS (Algorithm 2 / §3.3 of the paper).
///
/// These do not change the numerics at all — they change how much global
/// memory traffic the simulated kernels generate, which is exactly the
/// ablation Figures 7 and 8 of the paper perform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryOptConfig {
    /// Gather `Θᵀ` columns through the read-only texture cache (Figure 8's
    /// ablation).
    pub use_texture: bool,
    /// Accumulate the `f × f` Hermitian `A_u` in the register file instead
    /// of global memory (Figure 7's ablation — the paper's biggest win).
    pub use_registers: bool,
    /// Number of `Θᵀ` columns staged in shared memory per iteration of the
    /// inner loop (the paper recommends 10–30).
    pub bin: u32,
}

impl Default for MemoryOptConfig {
    fn default() -> Self {
        Self {
            use_texture: true,
            use_registers: true,
            bin: 20,
        }
    }
}

impl MemoryOptConfig {
    /// The fully-optimized configuration (the paper's cuMF).
    pub fn optimized() -> Self {
        Self::default()
    }

    /// A configuration with every optimization disabled — the "vanilla GPU
    /// implementation without memory optimization" the paper compares
    /// against in §1.
    pub fn naive() -> Self {
        Self {
            use_texture: false,
            use_registers: false,
            bin: 20,
        }
    }

    /// The optimized configuration minus register accumulation (Figure 7).
    pub fn without_registers() -> Self {
        Self {
            use_registers: false,
            ..Self::default()
        }
    }

    /// The optimized configuration minus the texture path (Figure 8).
    pub fn without_texture() -> Self {
        Self {
            use_texture: false,
            ..Self::default()
        }
    }
}

/// Hyper-parameters and run controls for an ALS factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct AlsConfig {
    /// Latent feature dimension `f`.
    pub f: usize,
    /// Weighted-λ regularization strength (the paper's λ; each row's ridge is
    /// `λ · n_{x_u}` following Zhou et al.).
    pub lambda: f32,
    /// Number of ALS iterations (each iteration updates both `X` and `Θ`).
    pub iterations: usize,
    /// Seed for factor-matrix initialization.
    pub seed: u64,
    /// Memory-optimization toggles for the simulated GPU engines.
    pub memory_opt: MemoryOptConfig,
    /// Evaluate RMSE after every iteration (disable for pure benchmarking).
    pub track_rmse: bool,
}

impl Default for AlsConfig {
    fn default() -> Self {
        Self {
            f: 32,
            lambda: 0.05,
            iterations: 10,
            seed: 42,
            memory_opt: MemoryOptConfig::default(),
            track_rmse: true,
        }
    }
}

impl AlsConfig {
    /// Validates the configuration, panicking with a clear message on
    /// nonsensical values.
    pub fn validate(&self) {
        assert!(self.f > 0, "latent dimension f must be positive");
        assert!(self.lambda >= 0.0, "lambda must be non-negative");
        assert!(self.iterations > 0, "at least one iteration is required");
        assert!(self.memory_opt.bin > 0, "bin size must be positive");
    }

    /// The paper's configuration for the Netflix data set (f=100, λ=0.05).
    pub fn netflix_paper() -> Self {
        Self {
            f: 100,
            lambda: 0.05,
            ..Default::default()
        }
    }

    /// The paper's configuration for the YahooMusic data set (f=100, λ=1.4).
    pub fn yahoo_music_paper() -> Self {
        Self {
            f: 100,
            lambda: 1.4,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        AlsConfig::default().validate();
        AlsConfig::netflix_paper().validate();
        AlsConfig::yahoo_music_paper().validate();
    }

    #[test]
    fn ablation_presets_toggle_the_right_flag() {
        let opt = MemoryOptConfig::optimized();
        assert!(opt.use_texture && opt.use_registers);
        let no_reg = MemoryOptConfig::without_registers();
        assert!(no_reg.use_texture && !no_reg.use_registers);
        let no_tex = MemoryOptConfig::without_texture();
        assert!(!no_tex.use_texture && no_tex.use_registers);
        let naive = MemoryOptConfig::naive();
        assert!(!naive.use_texture && !naive.use_registers);
    }

    #[test]
    fn paper_presets_match_table5() {
        assert_eq!(AlsConfig::netflix_paper().f, 100);
        assert!((AlsConfig::yahoo_music_paper().lambda - 1.4).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "latent dimension")]
    fn zero_f_is_invalid() {
        AlsConfig {
            f: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "bin size")]
    fn zero_bin_is_invalid() {
        AlsConfig {
            memory_opt: MemoryOptConfig {
                bin: 0,
                ..Default::default()
            },
            ..Default::default()
        }
        .validate();
    }
}

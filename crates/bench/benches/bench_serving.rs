//! Serving-path benchmark, eight rungs up the same ladder:
//!
//! 1. naive per-request scoring (score every item, sort the whole catalog —
//!    what `recommend()` did before the serving subsystem),
//! 2. the batched blocked top-k scorer of `cumf-serve` (PR 2), unsharded
//!    and item-sharded,
//! 3. the full `TopKService` under closed-loop concurrent load: the
//!    single-worker PR 2 baseline versus the sharded scorer worker pool,
//! 4. publication cost: a **full snapshot republication** versus a
//!    **delta publish** folding in ≤1% of users on the same catalog — the
//!    `O(m·f)` vs `O(u·f)` comparison the incremental path exists for,
//! 5. pruning effectiveness: catalog-order versus **norm-descending** item
//!    layout on a skewed-norm catalog, with the blocks-scored/blocks-pruned
//!    counters printed into the bench report (results are bit-identical;
//!    the permuted layout must skip strictly more blocks),
//! 6. approximation: the epsilon → (recall@k, blocks scanned, latency)
//!    tradeoff curve of early-terminated retrieval on the skewed-norm
//!    catalog, with epsilon-0 bit-identity and the default epsilon's
//!    recall target asserted by the run itself,
//! 7. item-append publication: pushing an `O(a·f)` tail **segment** versus
//!    the full-Θ-copy rebuild the pre-segmented store paid,
//! 8. fold-in: solving a user batch's normal equations **directly against
//!    the store's segment views** versus first materializing a contiguous
//!    catalog-order Θ (bit-identical results asserted) — the zero-Θ-copy
//!    invariant the online loop's incremental path rides on,
//! 9. quantization: the same skewed catalog served at f32 / f16 / i8, with
//!    bytes-per-query, post-rerank recall@k, and latency for every
//!    precision printed into the report — and the tentpole's byte-ratio and
//!    recall floors (≥1.8× at f16 with recall 1.0, ≥3.5× at i8 with recall
//!    ≥ 0.99) asserted by the run itself.
//!
//! Catalog sizes reach the ≥100k-item regime the paper's deployments imply.
//! Throughput is reported in requests/sec.  Pool/shard sizing for rung 3
//! follows `--workers N` / `--shards N` (after `--` in `cargo bench`),
//! defaulting to 4×4; on a single-core runner the pool shows no speedup —
//! the ≥2× claim is for multicore runners.  `--quick` (used by the CI
//! bench-smoke job) trims catalog sizes and skips the slow naive baseline
//! at the largest size so the whole suite lands in seconds while still
//! exercising every rung, including the delta-vs-full and
//! permuted-vs-catalog comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cumf_core::foldin::{fold_in_users, fold_in_users_segmented, ratings_rows};
use cumf_linalg::blas::dot;
use cumf_linalg::FactorMatrix;
use cumf_linalg::Precision;
use cumf_serve::{
    measure_recall, report_from_lists, ApproxPolicy, FactorSnapshot, ItemLayout, Query, ScoreKind,
    ServeConfig, SnapshotStore, TopKIndex, TopKService, DEFAULT_APPROX_EPSILON,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const F: usize = 32;
const N_USERS: usize = 1_000;
const REQUESTS: usize = 64;
const CLIENTS: usize = 8;
const K: usize = 10;
/// Users in the delta-publish benchmark's snapshot (the publish cost under
/// test scales with this for the full path, with the changed-user count for
/// the delta path).
const PUBLISH_USERS: usize = 50_000;

/// Pool sizing for the service-level benchmarks, overridable from the
/// command line: `cargo bench --bench bench_serving -- --workers 8 --shards 8`.
fn pool_args() -> (usize, usize) {
    let argv: Vec<String> = std::env::args().collect();
    let lookup = |flag: &str, default: usize| {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(default)
            .max(1)
    };
    (lookup("--workers", 4), lookup("--shards", 4))
}

/// CI smoke mode: `cargo bench --bench bench_serving -- --quick`.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

fn snapshot(n_items: usize) -> Arc<FactorSnapshot> {
    Arc::new(FactorSnapshot::from_factors(
        FactorMatrix::random(N_USERS, F, 0.5, 11),
        FactorMatrix::random(n_items, F, 0.5, 12),
    ))
}

fn queries() -> Vec<Query> {
    (0..REQUESTS as u32)
        .map(|i| Query::new((i * 37) % N_USERS as u32, K))
        .collect()
}

/// The pre-serving path: score the full catalog into a vector and sort it,
/// once per request.  `theta` is the materialized catalog
/// (`snap.item_factors_matrix()`), hoisted out so the naive baseline does
/// not pay the segmented store's materialization per request.
fn naive_recommend(
    snap: &FactorSnapshot,
    theta: &cumf_linalg::FactorMatrix,
    user: u32,
    k: usize,
) -> Vec<(u32, f32)> {
    let x_u = snap.user_vector(user).expect("user in range");
    let mut scored: Vec<(u32, f32)> = (0..theta.len() as u32)
        .map(|v| (v, dot(x_u, theta.vector(v as usize))))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(k);
    scored
}

fn bench_serving(c: &mut Criterion) {
    let (_, shards) = pool_args();
    let quick = quick_mode();
    let sizes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 250_000]
    };
    let mut group = c.benchmark_group("serving_topk");
    group.sample_size(if quick { 3 } else { 10 });
    for &n_items in sizes {
        let snap = snapshot(n_items);
        let qs = queries();
        group.throughput(Throughput::Elements(REQUESTS as u64));
        if !(quick && n_items > 10_000) {
            let theta = snap.item_factors_matrix();
            group.bench_with_input(
                BenchmarkId::new("naive_per_request", n_items),
                &n_items,
                |b, _| {
                    b.iter(|| {
                        for q in &qs {
                            black_box(naive_recommend(&snap, &theta, q.user, q.k));
                        }
                    });
                },
            );
        }
        let index = TopKIndex::new(Arc::clone(&snap), 512, ScoreKind::Dot);
        group.bench_with_input(
            BenchmarkId::new("batched_blocked", n_items),
            &n_items,
            |b, _| {
                b.iter(|| black_box(index.query_batch(&qs)));
            },
        );
        let sharded = TopKIndex::with_shards(Arc::clone(&snap), 512, ScoreKind::Dot, shards);
        group.bench_with_input(
            BenchmarkId::new(format!("batched_sharded{shards}"), n_items),
            &n_items,
            |b, _| {
                b.iter(|| black_box(sharded.query_batch(&qs)));
            },
        );
    }
    group.finish();
}

/// Drives a running service with `REQUESTS` closed-loop requests from
/// `CLIENTS` client threads and waits for every reply.
fn drive_service(service: &TopKService) {
    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let client = service.client();
            s.spawn(move || {
                let per_client = REQUESTS / CLIENTS;
                for i in 0..per_client {
                    let user = ((t * per_client + i) as u32 * 37) % N_USERS as u32;
                    let r = client
                        .recommend(user, K, &[])
                        .expect("service alive during bench");
                    black_box(r);
                }
            });
        }
    });
}

/// Pool comparison: one worker + one shard (the PR 2 service) versus the
/// sharded worker pool, both scoring every request (cache off) at the
/// 250k-item catalog size (100k in quick mode).
fn bench_service_pool(c: &mut Criterion) {
    let (workers, shards) = pool_args();
    let quick = quick_mode();
    let n_items = if quick { 100_000 } else { 250_000 };
    let mut group = c.benchmark_group("serving_service");
    group.sample_size(if quick { 3 } else { 10 });
    group.throughput(Throughput::Elements(REQUESTS as u64));
    let mut configs = vec![(1usize, 1usize)];
    if (workers, shards) != (1, 1) {
        configs.push((workers, shards));
    }
    for (workers, shards) in configs {
        let snap = snapshot(n_items);
        let service = TopKService::start(
            Arc::try_unwrap(snap).expect("sole owner"),
            ServeConfig {
                workers,
                shards,
                cache_capacity: 0, // every request must hit the scorer
                max_batch: 16,
                max_delay: Duration::from_millis(1),
                ..Default::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("workers{workers}_shards{shards}"), n_items),
            &n_items,
            |b, _| {
                b.iter(|| drive_service(&service));
            },
        );
        let metrics = service.metrics();
        assert_eq!(metrics.worker_panics, 0);
        // The stage percentile table (queue-wait → reply + e2e) lands in
        // the captured bench report, so per-PR latency-breakdown
        // trajectories are recorded alongside throughput.
        println!("--- service metrics (workers{workers}_shards{shards}) ---\n{metrics}");
    }
    group.finish();
}

/// The incremental-update comparison: full snapshot republication (clone
/// both factor matrices, recompute every item norm, swap) versus a delta
/// publish folding in 0.1% / 1% of users against the same catalog.  The
/// full path moves `O((m+n)·f)` bytes per publish; the delta path `O(u·f)`
/// — at ≤1% changed users the delta must win by orders of magnitude.
fn bench_publish(c: &mut Criterion) {
    let quick = quick_mode();
    let (m, n_items) = if quick {
        (PUBLISH_USERS / 5, 50_000)
    } else {
        (PUBLISH_USERS, 250_000)
    };
    let x = FactorMatrix::random(m, F, 0.5, 21);
    let theta = FactorMatrix::random(n_items, F, 0.5, 22);
    let store = SnapshotStore::new(FactorSnapshot::from_factors(x.clone(), theta.clone()));

    let mut group = c.benchmark_group("serving_publish");
    group.sample_size(if quick { 3 } else { 10 });
    group.throughput(Throughput::Bytes(((m + n_items) * F * 4) as u64));
    group.bench_with_input(
        BenchmarkId::new("full_publish", n_items),
        &n_items,
        |b, _| {
            b.iter(|| {
                // A full republication pays for fresh factor copies and a
                // complete norm recompute, every time.
                store.publish(FactorSnapshot::from_factors(x.clone(), theta.clone()))
            });
        },
    );

    for ppm in [1_000u64, 10_000] {
        let u = (m as u64 * ppm / 1_000_000) as usize;
        let rows = FactorMatrix::random(u, F, 0.5, 23);
        group.throughput(Throughput::Bytes((u * F * 4) as u64));
        group.bench_with_input(
            BenchmarkId::new(
                format!("delta_publish_{}pct_users", ppm as f64 / 10_000.0),
                n_items,
            ),
            &n_items,
            |b, _| {
                b.iter(|| {
                    let base = store.load();
                    let mut delta = base.delta();
                    for i in 0..u {
                        delta.update_user(((i * 997) % m) as u32, rows.vector(i));
                    }
                    store.publish_delta(&delta).expect("sole publisher")
                });
            },
        );
    }
    group.finish();
}

/// Pruning-effectiveness comparison: the same skewed-norm catalog stored in
/// catalog order versus norm-descending order.  Results are bit-identical
/// (asserted); the permuted layout must skip strictly more blocks
/// (asserted), and both layouts' blocks-scored / blocks-pruned counters are
/// printed so the CI bench artifact records the pruning win alongside the
/// throughput numbers.
fn bench_pruning(c: &mut Criterion) {
    let quick = quick_mode();
    let n_items = if quick { 50_000 } else { 200_000 };
    let x = FactorMatrix::random(N_USERS, F, 0.5, 31);
    // Skewed norms with the heavy items scattered across the id space: the
    // worst case for catalog-order pruning, the motivating case for the
    // norm-descending layout.
    let theta = skewed_theta(n_items, 32);
    let qs = queries();
    let layouts = [
        ("catalog_order", ItemLayout::CatalogOrder),
        ("norm_descending", ItemLayout::NormDescending),
    ];
    let mut group = c.benchmark_group("serving_pruning");
    group.sample_size(if quick { 3 } else { 10 });
    group.throughput(Throughput::Elements(REQUESTS as u64));
    let mut stats = Vec::new();
    let mut results = Vec::new();
    for (name, layout) in layouts {
        let snap = Arc::new(FactorSnapshot::from_factors_with_layout(
            x.clone(),
            theta.clone(),
            layout,
        ));
        let index = TopKIndex::new(Arc::clone(&snap), 512, ScoreKind::Dot);
        let (res, prune) = index.query_batch_stats(&qs);
        println!(
            "pruning[{name}]: {} blocks scored, {} pruned ({:.1}% skipped) over {} requests",
            prune.blocks_scored,
            prune.blocks_pruned,
            100.0 * prune.pruned_fraction(),
            qs.len()
        );
        stats.push(prune);
        results.push(res);
        group.bench_with_input(BenchmarkId::new(name, n_items), &n_items, |b, _| {
            b.iter(|| black_box(index.query_batch(&qs)));
        });
    }
    group.finish();
    assert_eq!(results[0], results[1], "layouts must agree bit-for-bit");
    assert!(
        stats[1].blocks_pruned > stats[0].blocks_pruned,
        "norm-descending must skip strictly more blocks: {} vs {}",
        stats[1].blocks_pruned,
        stats[0].blocks_pruned
    );
}

/// Skewed-norm item factors: a few heavy hitters scattered across the id
/// space, a long cheap tail — shared by the pruning and approximation
/// benchmarks.
fn skewed_theta(n_items: usize, seed: u64) -> FactorMatrix {
    let mut theta = FactorMatrix::random(n_items, F, 0.5, seed);
    for v in 0..n_items {
        let h = (v as u32).wrapping_mul(2654435761) % 64;
        let scale = if h == 0 { 4.0 } else { 0.01 + 0.001 * h as f32 };
        for e in theta.vector_mut(v) {
            *e *= scale;
        }
    }
    theta
}

/// The approximation tradeoff curve: for a ladder of epsilons on the
/// skewed-norm, norm-descending catalog, print measured recall@k and
/// blocks scanned (via [`measure_recall`], the same harness the tests and
/// the load-gen gate use) and benchmark the retrieval latency — so the CI
/// artifact records the full epsilon → (recall, blocks, latency) table.
/// The run itself asserts the repo's acceptance criteria: epsilon 0 is
/// bit-identical, and the default epsilon meets its recall target while
/// scanning strictly fewer blocks than exact.
fn bench_approximate(c: &mut Criterion) {
    let quick = quick_mode();
    let (_, shards) = pool_args();
    let n_items = if quick { 50_000 } else { 200_000 };
    let x = FactorMatrix::random(N_USERS, F, 0.5, 51);
    let snap = Arc::new(FactorSnapshot::from_factors_with_layout(
        x,
        skewed_theta(n_items, 52),
        ItemLayout::NormDescending,
    ));
    let qs = queries();
    let mut group = c.benchmark_group("serving_approximate");
    group.sample_size(if quick { 3 } else { 10 });
    group.throughput(Throughput::Elements(REQUESTS as u64));
    let mut default_report = None;
    for eps in [0.0f32, 0.05, DEFAULT_APPROX_EPSILON, 0.25, 0.5] {
        let policy = ApproxPolicy::with_epsilon(eps);
        let report = measure_recall(&snap, &qs, 512, ScoreKind::Dot, shards, &policy);
        println!(
            "approximate[eps={eps:.2}]: mean recall {:.4}, min {:.4}, blocks {} (exact {}), {} terminated",
            report.mean_recall,
            report.min_recall,
            report.approx_stats.blocks_scored,
            report.exact_stats.blocks_scored,
            report.approx_stats.blocks_terminated,
        );
        if eps == 0.0 {
            assert!(
                report.all_identical(),
                "epsilon 0 must be bit-identical to exact: {report}"
            );
        }
        if eps == DEFAULT_APPROX_EPSILON {
            default_report = Some((policy, report));
        }
        let index =
            TopKIndex::with_approx(Arc::clone(&snap), 512, ScoreKind::Dot, shards, Some(policy));
        group.bench_with_input(
            BenchmarkId::new(format!("eps{eps:.2}"), n_items),
            &n_items,
            |b, _| {
                b.iter(|| black_box(index.query_batch(&qs)));
            },
        );
    }
    group.finish();
    let (policy, report) = default_report.expect("default epsilon is in the ladder");
    assert!(
        report.mean_recall >= policy.target_recall,
        "default epsilon misses its recall target: {report}"
    );
    assert!(
        report.approx_stats.blocks_scored < report.exact_stats.blocks_scored,
        "default epsilon saved no scanning on the skewed catalog: {report}"
    );
}

/// The quantization rung: the skewed-norm, norm-descending catalog served
/// at every [`Precision`], same queries, same blocking.  For each reduced
/// precision the run prints bytes-per-query (total, and scan-only with the
/// rerank's exact-row fetches subtracted), post-rerank recall@k against the
/// exact f32 lists, and the rerank candidate volume — then asserts the
/// tentpole's floors: f16 moves ≥ 1.8× fewer bytes with recall 1.0, i8
/// ≥ 3.5× fewer with recall ≥ 0.99.  The latency of each precision lands in
/// the criterion report alongside.
///
/// Note the over-fetch asymmetry: the quantized scan keeps
/// `k · rerank_factor` candidates, which weakens its heap threshold
/// relative to the exact scan at plain `k`, so the byte ratios here are
/// measured against the exact baseline *at the user's k* — the honest
/// end-to-end accounting, strictly harder than a matched-candidate-count
/// comparison.
fn bench_quantized(c: &mut Criterion) {
    let quick = quick_mode();
    let (_, shards) = pool_args();
    let n_items = if quick { 50_000 } else { 200_000 };
    let x = FactorMatrix::random(N_USERS, F, 0.5, 61);
    let snap = Arc::new(FactorSnapshot::from_factors_with_layout(
        x,
        skewed_theta(n_items, 62),
        ItemLayout::NormDescending,
    ));
    let qs = queries();
    let exact = TopKIndex::with_shards(Arc::clone(&snap), 512, ScoreKind::Dot, shards);
    let (exact_results, exact_stats) = exact.query_batch_stats(&qs);

    let mut group = c.benchmark_group("serving_quantized");
    group.sample_size(if quick { 3 } else { 10 });
    group.throughput(Throughput::Elements(REQUESTS as u64));
    println!(
        "quantized[f32]: {} bytes/query (baseline), {} blocks scored",
        exact_stats.bytes_scanned / qs.len() as u64,
        exact_stats.blocks_scored,
    );
    group.bench_with_input(BenchmarkId::new("f32", n_items), &n_items, |b, _| {
        b.iter(|| black_box(exact.query_batch(&qs)));
    });
    for (precision, min_ratio, recall_floor) in
        [(Precision::F16, 1.8, 1.0), (Precision::I8, 3.5, 0.99)]
    {
        let re = Arc::new(snap.reencoded(precision));
        let index = TopKIndex::with_shards(Arc::clone(&re), 512, ScoreKind::Dot, shards);
        let (got, stats) = index.query_batch_stats(&qs);
        let report = report_from_lists(&exact_results, &got, exact_stats, stats);
        let scan_only = stats.bytes_scanned - stats.rerank_candidates * (F as u64) * 4;
        let ratio = exact_stats.bytes_scanned as f64 / stats.bytes_scanned as f64;
        println!(
            "quantized[{precision}]: {:.2}x bytes/query ({} vs {} per query; scan-only {}), \
             mean recall {:.4} (min {:.4}), {} rerank candidates over {} requests",
            ratio,
            stats.bytes_scanned / qs.len() as u64,
            exact_stats.bytes_scanned / qs.len() as u64,
            scan_only / qs.len() as u64,
            report.mean_recall,
            report.min_recall,
            stats.rerank_candidates,
            qs.len(),
        );
        assert!(
            report.mean_recall >= recall_floor,
            "{precision}: post-rerank recall {:.4} below the {recall_floor} floor",
            report.mean_recall
        );
        assert!(
            ratio >= min_ratio,
            "{precision}: byte ratio {ratio:.2}x below the {min_ratio}x floor \
             ({} vs {} bytes)",
            stats.bytes_scanned,
            exact_stats.bytes_scanned
        );
        group.bench_with_input(
            BenchmarkId::new(precision.name(), n_items),
            &n_items,
            |b, _| {
                b.iter(|| black_box(index.query_batch(&qs)));
            },
        );
    }
    group.finish();
}

/// Item-append publication cost: pushing an `a`-row tail segment
/// (`O(a·f)`, the segmented store's delta path) versus rebuilding the
/// snapshot around a full Θ copy (`O(n·f)`, what the pre-segmented store
/// had to do).  At a ≪ n the segment push must win by orders of magnitude.
fn bench_item_append(c: &mut Criterion) {
    let quick = quick_mode();
    let n_items = if quick { 50_000 } else { 250_000 };
    let appended = 1_024usize;
    let x = FactorMatrix::random(N_USERS, F, 0.5, 41);
    let theta = FactorMatrix::random(n_items, F, 0.5, 42);
    let rows = FactorMatrix::random(appended, F, 0.5, 43);
    let base = FactorSnapshot::from_factors(x.clone(), theta.clone());
    let mut delta = base.delta();
    delta.append_items(&rows);
    // Sanity + artifact line: the segment push copies exactly O(a·f).
    let (_, stats) = base.apply_delta(&delta).expect("append applies");
    assert_eq!(stats.item_factor_bytes_copied, appended * F * 4);
    println!(
        "item_append: {} appended rows copy {} bytes (full Θ would be {} bytes)",
        appended,
        stats.item_factor_bytes_copied,
        (n_items + appended) * F * 4
    );

    let mut group = c.benchmark_group("serving_item_append");
    group.sample_size(if quick { 3 } else { 10 });
    group.throughput(Throughput::Bytes((appended * F * 4) as u64));
    group.bench_with_input(
        BenchmarkId::new("segment_push", n_items),
        &n_items,
        |b, _| {
            b.iter(|| black_box(base.apply_delta(&delta).expect("append applies")));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("full_theta_copy", n_items),
        &n_items,
        |b, _| {
            b.iter(|| {
                // The pre-segmented path: materialize the grown catalog and
                // rebuild the snapshot (norms recomputed for every item).
                let mut grown = theta.clone();
                grown.append_rows(&rows);
                black_box(FactorSnapshot::from_factors(x.clone(), grown))
            });
        },
    );
    group.finish();
}

/// Fold-in against the serving catalog, two ways: materializing a
/// contiguous catalog-order Θ from the segmented store and solving against
/// it (the pre-online-loop path, `O(n·f)` copy per batch regardless of
/// batch size) versus solving directly against the store's segment views
/// (`fold_in_users_segmented`, zero Θ bytes copied).  Results are
/// bit-identical — asserted before timing — so the rung isolates the pure
/// materialization overhead the online loop's zero-copy invariant removes.
fn bench_fold_in(c: &mut Criterion) {
    let quick = quick_mode();
    let n_items = if quick { 50_000 } else { 200_000 };
    let batch_users = 64usize;
    let snap = snapshot(n_items);
    let mut rng_state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        // xorshift*: deterministic rating placement without pulling rand in.
        rng_state ^= rng_state >> 12;
        rng_state ^= rng_state << 25;
        rng_state ^= rng_state >> 27;
        rng_state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let rating_lists: Vec<Vec<(u32, f32)>> = (0..batch_users)
        .map(|_| {
            (0..32)
                .map(|_| {
                    let item = (next() % n_items as u64) as u32;
                    (item, 1.0 + (next() % 400) as f32 / 100.0)
                })
                .collect()
        })
        .collect();
    let ratings = ratings_rows(&rating_lists, n_items as u32);
    let lambda = 0.05;

    let materialized = fold_in_users(&ratings, &snap.item_factors_matrix(), lambda);
    let segmented = fold_in_users_segmented(&ratings, &snap.items().views(), F, lambda);
    for u in 0..batch_users {
        assert_eq!(
            materialized.vector(u),
            segmented.vector(u),
            "fold-in paths must agree bit-for-bit"
        );
    }

    let mut group = c.benchmark_group("serving_fold_in");
    group.sample_size(if quick { 3 } else { 10 });
    group.throughput(Throughput::Elements(batch_users as u64));
    group.bench_with_input(
        BenchmarkId::new("materialized_theta", n_items),
        &n_items,
        |b, _| {
            b.iter(|| {
                // The pre-online-loop path: copy the whole segmented
                // catalog into one contiguous Θ, then solve.
                black_box(fold_in_users(&ratings, &snap.item_factors_matrix(), lambda))
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("segmented_in_place", n_items),
        &n_items,
        |b, _| {
            b.iter(|| {
                black_box(fold_in_users_segmented(
                    &ratings,
                    &snap.items().views(),
                    F,
                    lambda,
                ))
            });
        },
    );
    group.finish();
}

criterion_group!(
    serving,
    bench_serving,
    bench_service_pool,
    bench_publish,
    bench_fold_in,
    bench_pruning,
    bench_approximate,
    bench_quantized,
    bench_item_append
);
criterion_main!(serving);

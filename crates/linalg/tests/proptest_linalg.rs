//! Property-based tests for the dense linear-algebra substrate.

use cumf_linalg::blas::{add_diagonal, dot, gemv, symmetrize_upper, syr_full, syr_upper};
use cumf_linalg::cholesky::{cholesky_solve, residual_norm};
use cumf_linalg::{
    batch_solve, block_max_norms, f16_bits_to_f32, f32_to_f16_bits, item_norms,
    retrieve_top_k_segments, retrieve_top_k_segments_approx, ApproxPolicy, DenseMatrix,
    EncodedSlab, FactorMatrix, Precision, PruneStats, SegmentView, F16_REL_ERR, F16_SUBNORMAL_ABS,
};
use proptest::prelude::*;

/// Owned backing storage for a set of segment views over one catalog: the
/// (possibly permuted) slabs, norms, block-max tables, and id remaps.
struct SegmentedCatalog {
    slabs: Vec<Vec<f32>>,
    norms: Vec<Vec<f32>>,
    tables: Vec<Vec<f32>>,
    ids: Vec<Option<Vec<u32>>>,
    firsts: Vec<u32>,
    item_block: usize,
}

impl SegmentedCatalog {
    /// Splits `theta` at `cuts` (global item offsets, ending at `n`); when
    /// `norm_descending` each segment's rows are stored sorted by norm
    /// (descending) with an id remap, mirroring the serve-tier layout.
    fn build(
        theta: &FactorMatrix,
        cuts: &[usize],
        item_block: usize,
        norm_descending: bool,
    ) -> Self {
        let f = theta.rank();
        let all_norms = item_norms(theta.data(), f);
        let mut out = SegmentedCatalog {
            slabs: Vec::new(),
            norms: Vec::new(),
            tables: Vec::new(),
            ids: Vec::new(),
            firsts: Vec::new(),
            item_block,
        };
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mut order: Vec<usize> = (lo..hi).collect();
            if norm_descending {
                order.sort_by(|&a, &b| {
                    all_norms[b]
                        .partial_cmp(&all_norms[a])
                        .unwrap()
                        .then(a.cmp(&b))
                });
            }
            let mut slab = Vec::with_capacity((hi - lo) * f);
            let mut norms = Vec::with_capacity(hi - lo);
            for &v in &order {
                slab.extend_from_slice(&theta.data()[v * f..(v + 1) * f]);
                norms.push(all_norms[v]);
            }
            out.tables.push(block_max_norms(&norms, item_block));
            out.slabs.push(slab);
            out.norms.push(norms);
            out.ids.push(if norm_descending {
                Some(order.iter().map(|&v| v as u32).collect())
            } else {
                None
            });
            out.firsts.push(lo as u32);
        }
        out
    }

    fn views(&self) -> Vec<SegmentView<'_>> {
        (0..self.slabs.len())
            .map(|i| SegmentView {
                items: &self.slabs[i],
                norms: &self.norms[i],
                block_max: &self.tables[i],
                item_block: self.item_block,
                first_id: self.firsts[i],
                ids: self.ids[i].as_deref(),
                pos: None,
                encoded: None,
            })
            .collect()
    }
}

/// A factor coefficient that exercises the codecs' whole input domain:
/// ordinary magnitudes, both signed zeros, values in binary16's subnormal
/// range, and values so small they underflow f16 entirely.
fn arb_codec_value() -> impl Strategy<Value = f32> {
    (0u32..10, -8.0f32..8.0).prop_map(|(class, u)| match class {
        0 => 0.0,
        1 => -0.0,
        // Inside f16's subnormal band (below 2⁻¹⁴ ≈ 6.1e-5).
        2 => u * (3.0e-5 / 8.0),
        // Far below the smallest f16 subnormal — must round to ±0.
        3 => u * (1.0e-30 / 8.0),
        _ => u,
    })
}

/// A row-major slab whose length is a multiple of the latent dimension.
fn arb_codec_slab() -> impl Strategy<Value = (usize, Vec<f32>)> {
    (1usize..12).prop_flat_map(|f| {
        (
            Just(f),
            proptest::collection::vec(arb_codec_value(), f..=40 * f).prop_map(move |mut v| {
                v.truncate(v.len() / f * f);
                v
            }),
        )
    })
}

/// A strategy for an SPD system built the way ALS builds them: a sum of
/// rank-1 outer products plus a positive ridge.
fn arb_spd_system(max_f: usize) -> impl Strategy<Value = (usize, Vec<f32>, Vec<f32>)> {
    (2..=max_f).prop_flat_map(|f| {
        let terms = 2 * f;
        (
            Just(f),
            proptest::collection::vec(-1.0f32..1.0, terms * f),
            proptest::collection::vec(-1.0f32..1.0, f),
            0.05f32..2.0,
        )
            .prop_map(move |(f, vecs, b, lambda)| {
                let mut a = vec![0.0f32; f * f];
                for chunk in vecs.chunks(f) {
                    syr_full(&mut a, chunk);
                }
                add_diagonal(&mut a, f, lambda);
                (f, a, b)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cholesky_solves_als_style_systems((f, a, b) in arb_spd_system(24)) {
        let mut a_work = a.clone();
        let mut x = b.clone();
        cholesky_solve(&mut a_work, f, &mut x).unwrap();
        let res = residual_norm(&a, f, &x, &b);
        let scale = b.iter().map(|&v| (v as f64).abs()).sum::<f64>().max(1.0);
        prop_assert!(res / scale < 5e-3, "f={} residual={}", f, res);
    }

    #[test]
    fn syr_upper_symmetrized_equals_syr_full(x in proptest::collection::vec(-2.0f32..2.0, 1..20)) {
        let f = x.len();
        let mut full = vec![0.0f32; f * f];
        syr_full(&mut full, &x);
        let mut up = vec![0.0f32; f * f];
        syr_upper(&mut up, &x);
        symmetrize_upper(&mut up, f);
        for (a, b) in full.iter().zip(up.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn dot_is_commutative_and_bilinear(
        x in proptest::collection::vec(-10.0f32..10.0, 1..32),
        alpha in -3.0f32..3.0,
    ) {
        let y: Vec<f32> = x.iter().rev().copied().collect();
        prop_assert!((dot(&x, &y) - dot(&y, &x)).abs() < 1e-3);
        let scaled: Vec<f32> = x.iter().map(|v| v * alpha).collect();
        prop_assert!((dot(&scaled, &y) - alpha * dot(&x, &y)).abs() < 2e-2 * (1.0 + dot(&x, &y).abs()));
    }

    #[test]
    fn gemv_matches_dense_matmul(
        rows in 1usize..8, cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        let a = FactorMatrix::random(rows, cols, 1.0, seed);
        let x = FactorMatrix::random(1, cols, 1.0, seed + 1);
        let mut y = vec![0.0f32; rows];
        gemv(a.data(), rows, cols, x.vector(0), &mut y);
        let am = DenseMatrix::from_vec(rows, cols, a.data().to_vec());
        let xm = DenseMatrix::from_vec(cols, 1, x.data().to_vec());
        let expect = am.matmul(&xm);
        for (i, &yi) in y.iter().enumerate() {
            prop_assert!((yi - expect.get(i, 0)).abs() < 1e-4);
        }
    }

    #[test]
    fn batch_solve_matches_individual_solves(
        batch in 1usize..8,
        f in 2usize..10,
        seed in 0u64..500,
    ) {
        // Build `batch` SPD systems deterministically from the seed.
        let gen = FactorMatrix::random(batch * 3, f, 1.0, seed);
        let rhs_gen = FactorMatrix::random(batch, f, 1.0, seed + 7);
        let mut hermitians = vec![0.0f32; batch * f * f];
        let mut rhs = vec![0.0f32; batch * f];
        for i in 0..batch {
            let a = &mut hermitians[i * f * f..(i + 1) * f * f];
            for t in 0..3 {
                syr_full(a, gen.vector(i * 3 + t));
            }
            add_diagonal(a, f, 0.3);
            rhs[i * f..(i + 1) * f].copy_from_slice(rhs_gen.vector(i));
        }
        let orig_a = hermitians.clone();
        let orig_b = rhs.clone();
        let report = batch_solve(&mut hermitians, &mut rhs, f);
        prop_assert!(report.all_ok());
        for i in 0..batch {
            let mut a = orig_a[i * f * f..(i + 1) * f * f].to_vec();
            let mut x = orig_b[i * f..(i + 1) * f].to_vec();
            cholesky_solve(&mut a, f, &mut x).unwrap();
            for (got, want) in rhs[i * f..(i + 1) * f].iter().zip(x.iter()) {
                prop_assert!((got - want).abs() < 1e-5);
            }
        }
    }

    /// Satellite invariant: `epsilon = 0` with an unlimited block budget is
    /// bit-identical to exact segmented retrieval for any segmentation,
    /// blocking, and layout (catalog-order or norm-descending-with-remap).
    #[test]
    fn approx_epsilon_zero_is_bit_identical_to_exact(
        (n, f, seed) in (100usize..500, 3usize..9, 0u64..300),
        cut_a in 1usize..80,
        cut_b in 0usize..80,
        k in 1usize..12,
        block_sel in 0usize..3,
    ) {
        let item_block = [16usize, 33, 64][block_sel];
        let theta = FactorMatrix::random(n, f, 1.0, seed);
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, seed + 1).data().to_vec();
        let mut cuts = vec![0, cut_a.min(n - 1).max(1), (cut_a + cut_b).min(n - 1).max(1), n];
        cuts.dedup();
        for norm_descending in [false, true] {
            let catalog = SegmentedCatalog::build(&theta, &cuts, item_block, norm_descending);
            let views = catalog.views();
            let mut exact_stats = PruneStats::default();
            let exact = retrieve_top_k_segments(
                &user, f, k, &views, |v| v % 11 == 0, &mut exact_stats,
            );
            let mut approx_stats = PruneStats::default();
            let approx = retrieve_top_k_segments_approx(
                &user, f, k, &views, |v| v % 11 == 0,
                &ApproxPolicy::exact(), &mut approx_stats,
            );
            prop_assert_eq!(
                &approx, &exact,
                "eps=0 diverged: norm_descending={} cuts={:?} block={}",
                norm_descending, cuts, item_block
            );
            // It must also do exactly the same amount of work — the
            // termination bound with zero slack can only fire where every
            // remaining block would have been pruned anyway.
            prop_assert_eq!(approx_stats.blocks_scored, exact_stats.blocks_scored);
        }
    }

    /// Satellite invariant: on a norm-descending catalog, recall@k is
    /// monotone non-increasing in epsilon and the scan never grows.
    #[test]
    fn approx_recall_is_monotone_non_increasing_in_epsilon(
        seed in 0u64..300,
        k in 1usize..10,
    ) {
        let f = 8;
        let n = 2000;
        // Skew the norms so early termination has something to exploit.
        let mut theta = FactorMatrix::random(n, f, 1.0, seed);
        for v in 0..n {
            let h = (v as u32).wrapping_mul(2654435761) % 64;
            let scale = if h == 0 { 4.0 } else { 0.01 + 0.001 * h as f32 };
            for x in theta.vector_mut(v) {
                *x *= scale;
            }
        }
        let user: Vec<f32> = FactorMatrix::random(1, f, 1.0, seed + 1).data().to_vec();
        let catalog = SegmentedCatalog::build(&theta, &[0, n], 64, true);
        let views = catalog.views();
        let mut exact_stats = PruneStats::default();
        let exact = retrieve_top_k_segments(&user, f, k, &views, |_| false, &mut exact_stats);
        let truth: std::collections::HashSet<u32> = exact.iter().map(|&(v, _)| v).collect();
        let mut prev_recall = f64::INFINITY;
        let mut prev_scored = u64::MAX;
        for eps in [0.0f32, 0.05, 0.1, 0.25, 0.5, 0.9] {
            let mut stats = PruneStats::default();
            let got = retrieve_top_k_segments_approx(
                &user, f, k, &views, |_| false,
                &ApproxPolicy::with_epsilon(eps), &mut stats,
            );
            prop_assert_eq!(got.len(), exact.len(), "approx list must stay full-length");
            let recall = if truth.is_empty() {
                1.0
            } else {
                got.iter().filter(|&&(v, _)| truth.contains(&v)).count() as f64
                    / truth.len() as f64
            };
            prop_assert!(
                recall <= prev_recall + 1e-12,
                "recall rose from {} to {} at eps {}", prev_recall, recall, eps
            );
            prop_assert!(
                stats.blocks_scored <= prev_scored,
                "scan grew from {} to {} blocks at eps {}",
                prev_scored, stats.blocks_scored, eps
            );
            prev_recall = recall;
            prev_scored = stats.blocks_scored;
        }
    }

    /// Codec satellite: the scalar f16 round trip stays within the
    /// documented bound for every input class — normals within
    /// `F16_REL_ERR · |x|`, subnormals within `F16_SUBNORMAL_ABS`, and the
    /// sign (including signed zero) always survives.
    #[test]
    fn f16_round_trip_error_within_documented_bound(x in arb_codec_value()) {
        let back = f16_bits_to_f32(f32_to_f16_bits(x));
        let err = (back - x).abs();
        prop_assert!(
            err <= F16_REL_ERR * x.abs() + F16_SUBNORMAL_ABS,
            "x={x:e} decoded {back:e} err {err:e}"
        );
        prop_assert_eq!(
            back.is_sign_negative(), x.is_sign_negative(),
            "sign flipped: {} -> {}", x, back
        );
        if x == 0.0 {
            // ±0 must round-trip bit-exactly, not just within tolerance.
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    /// Codec satellite: for both codecs, every decoded row of an encoded
    /// slab sits within [`EncodedSlab::err_bound`] of its exact source row
    /// (the bound the pruning path folds into Cauchy–Schwarz), and for I8
    /// each coefficient is within half the block's independently recomputed
    /// scale.  Inputs include zeros, negatives, and subnormal-range values.
    #[test]
    fn encoded_slab_round_trip_stays_within_err_bound(
        (f, items) in arb_codec_slab(),
        quant_block in 1usize..17,
    ) {
        let rows = items.len() / f;
        for precision in [Precision::F16, Precision::I8] {
            let slab = EncodedSlab::encode(&items, f, quant_block, precision).unwrap();
            prop_assert_eq!(slab.rows(), rows);
            prop_assert_eq!(slab.precision(), precision);
            let decoded = slab.decode_all();
            for b in 0..rows.div_ceil(quant_block) {
                let (s, e) = (b * quant_block, ((b + 1) * quant_block).min(rows));
                let max_norm = decoded[s * f..e * f]
                    .chunks(f)
                    .map(|r| r.iter().map(|&v| v * v).sum::<f32>().sqrt())
                    .fold(0.0f32, f32::max);
                let bound = slab.err_bound(s, e, max_norm);
                for r in s..e {
                    let err = (0..f)
                        .map(|d| {
                            let delta = decoded[r * f + d] - items[r * f + d];
                            delta * delta
                        })
                        .sum::<f32>()
                        .sqrt();
                    prop_assert!(
                        err <= bound * (1.0 + 1e-5) + 1e-12,
                        "{precision}: row {r} err {err:e} > bound {bound:e}"
                    );
                }
                if precision == Precision::I8 {
                    // Re-derive the block scale independently of the codec
                    // and hold every coefficient to the documented scale/2.
                    let scale = items[s * f..e * f]
                        .iter()
                        .fold(0.0f32, |m, &x| m.max(x.abs()))
                        / 127.0;
                    for (x, d) in items[s * f..e * f].iter().zip(&decoded[s * f..e * f]) {
                        // The f32 divide inside the encoder can tip an
                        // exact-halfway case, so allow half an ulp of slack
                        // on top of the documented scale/2.
                        prop_assert!(
                            (d - x).abs() <= scale * 0.5 * (1.0 + 1e-4) + 1e-7,
                            "i8 block {b}: x {x:e} decoded {d:e} scale {scale:e}"
                        );
                    }
                }
            }
        }
    }

    /// Codec satellite: windowed decode is exactly the matching slice of the
    /// full decode (the scan's tile-by-tile path cannot drift from the
    /// whole-slab path), and all-zero blocks decode to exact zeros.
    #[test]
    fn windowed_decode_matches_full_decode(
        (f, mut items) in arb_codec_slab(),
        quant_block in 1usize..9,
        window in 0usize..64,
    ) {
        // Zero the first row so at least one exact-zero region exists.
        for x in items.iter_mut().take(f) {
            *x = 0.0;
        }
        let rows = items.len() / f;
        for precision in [Precision::F16, Precision::I8] {
            let slab = EncodedSlab::encode(&items, f, quant_block, precision).unwrap();
            let full = slab.decode_all();
            let start = window % rows;
            let end = (start + 1 + window % 7).min(rows);
            let mut out = vec![0.0f32; (end - start) * f];
            slab.decode_rows(start, end, &mut out);
            prop_assert_eq!(&out[..], &full[start * f..end * f], "{}", precision);
            prop_assert_eq!(
                &full[..f], &vec![0.0f32; f][..],
                "{}: zero row must decode to exact zeros", precision
            );
        }
    }

    #[test]
    fn transpose_involution_dense(rows in 1usize..10, cols in 1usize..10, seed in 0u64..100) {
        let fm = FactorMatrix::random(rows, cols, 1.0, seed);
        let m = DenseMatrix::from_vec(rows, cols, fm.data().to_vec());
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}

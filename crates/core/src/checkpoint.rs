//! Fault-tolerance checkpointing (§4.4 of the paper).
//!
//! "During ALS execution we asynchronously checkpoint X and Θ generated from
//! the latest iteration, into a connected parallel file system.  When the
//! machine fails, the latest X or Θ (whichever is more recent) is used to
//! restart ALS."
//!
//! The format is a small self-describing binary file (magic, version,
//! iteration, shapes, little-endian `f32` payloads) — no external
//! serialization crates needed.

use cumf_linalg::FactorMatrix;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

const MAGIC: &[u8; 8] = b"CUMFCKP1";

/// A checkpoint of the factor matrices after a given iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Iteration number the factors were produced by (1-based).
    pub iteration: u64,
    /// User factors `X`.
    pub x: FactorMatrix,
    /// Item factors `Θ`.
    pub theta: FactorMatrix,
}

/// Writes and restores checkpoints in a directory.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
}

impl CheckpointManager {
    /// Creates a manager rooted at `dir` (the directory is created if
    /// missing).
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory checkpoints are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, iteration: u64) -> PathBuf {
        self.dir.join(format!("checkpoint_{iteration:08}.cumf"))
    }

    /// Saves a checkpoint synchronously.  The file is written to a temporary
    /// name and atomically renamed, so a crash mid-write never corrupts the
    /// latest checkpoint.
    pub fn save(&self, checkpoint: &Checkpoint) -> io::Result<PathBuf> {
        let final_path = self.path_for(checkpoint.iteration);
        let tmp_path = final_path.with_extension("tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp_path)?);
            w.write_all(MAGIC)?;
            w.write_all(&checkpoint.iteration.to_le_bytes())?;
            write_factor(&mut w, &checkpoint.x)?;
            write_factor(&mut w, &checkpoint.theta)?;
            w.flush()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        Ok(final_path)
    }

    /// Saves a checkpoint on a background thread (the asynchronous mode the
    /// paper describes); join the handle to observe errors.
    pub fn save_async(&self, checkpoint: Checkpoint) -> JoinHandle<io::Result<PathBuf>> {
        let manager = self.clone();
        std::thread::spawn(move || manager.save(&checkpoint))
    }

    /// Loads the checkpoint with the highest iteration number, if any.
    pub fn load_latest(&self) -> io::Result<Option<Checkpoint>> {
        let mut best: Option<(u64, PathBuf)> = None;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(iter_str) = name
                .strip_prefix("checkpoint_")
                .and_then(|s| s.strip_suffix(".cumf"))
            {
                if let Ok(iter) = iter_str.parse::<u64>() {
                    if best.as_ref().map(|(b, _)| iter > *b).unwrap_or(true) {
                        best = Some((iter, entry.path()));
                    }
                }
            }
        }
        match best {
            None => Ok(None),
            Some((_, path)) => Ok(Some(Self::load(&path)?)),
        }
    }

    /// Loads a specific checkpoint file.
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a cuMF checkpoint",
            ));
        }
        let iteration = read_u64(&mut r)?;
        let x = read_factor(&mut r)?;
        let theta = read_factor(&mut r)?;
        Ok(Checkpoint {
            iteration,
            x,
            theta,
        })
    }

    /// Deletes every checkpoint older than the latest `keep` ones.
    pub fn prune(&self, keep: usize) -> io::Result<usize> {
        let mut files: Vec<(u64, PathBuf)> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy().to_string();
                name.strip_prefix("checkpoint_")
                    .and_then(|s| s.strip_suffix(".cumf"))
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(|i| (i, e.path()))
            })
            .collect();
        files.sort_by_key(|(i, _)| *i);
        let mut removed = 0;
        while files.len() > keep {
            let (_, path) = files.remove(0);
            fs::remove_file(path)?;
            removed += 1;
        }
        Ok(removed)
    }
}

fn write_factor<W: Write>(w: &mut W, m: &FactorMatrix) -> io::Result<()> {
    w.write_all(&(m.len() as u64).to_le_bytes())?;
    w.write_all(&(m.rank() as u64).to_le_bytes())?;
    for &v in m.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_factor<R: Read>(r: &mut R) -> io::Result<FactorMatrix> {
    let n = read_u64(r)? as usize;
    let f = read_u64(r)? as usize;
    let mut bytes = vec![0u8; n * f * 4];
    r.read_exact(&mut bytes)?;
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(FactorMatrix::from_vec(n, f, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir() -> PathBuf {
        let id = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!("cumf_ckpt_test_{}_{id}", std::process::id()))
    }

    fn sample_checkpoint(iteration: u64, seed: u64) -> Checkpoint {
        Checkpoint {
            iteration,
            x: FactorMatrix::random(50, 8, 1.0, seed),
            theta: FactorMatrix::random(30, 8, 1.0, seed + 1),
        }
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let ckpt = sample_checkpoint(3, 1);
        let path = mgr.save(&ckpt).unwrap();
        let loaded = CheckpointManager::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_latest_picks_the_highest_iteration() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        mgr.save(&sample_checkpoint(1, 1)).unwrap();
        mgr.save(&sample_checkpoint(7, 2)).unwrap();
        mgr.save(&sample_checkpoint(4, 3)).unwrap();
        let latest = mgr.load_latest().unwrap().unwrap();
        assert_eq!(latest.iteration, 7);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_latest_on_empty_dir_is_none() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        assert!(mgr.load_latest().unwrap().is_none());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn async_save_is_observable_after_join() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        let handle = mgr.save_async(sample_checkpoint(2, 9));
        let path = handle.join().unwrap().unwrap();
        assert!(path.exists());
        assert_eq!(mgr.load_latest().unwrap().unwrap().iteration, 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = temp_dir();
        let mgr = CheckpointManager::new(&dir).unwrap();
        for i in 1..=5 {
            mgr.save(&sample_checkpoint(i, i)).unwrap();
        }
        let removed = mgr.prune(2).unwrap();
        assert_eq!(removed, 3);
        let latest = mgr.load_latest().unwrap().unwrap();
        assert_eq!(latest.iteration, 5);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let dir = temp_dir();
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint_00000001.cumf");
        fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(CheckpointManager::load(&path).is_err());
        fs::remove_dir_all(dir).unwrap();
    }
}
